//! # Forward-chaining rule engine (database triggers)
//!
//! The application layer the paper's index exists for: production rules
//! `if condition then action` over a main-memory database, with every
//! tuple change matched against all rule conditions through the
//! Figure 1 discrimination network — served by
//! [`predindex::ShardedPredicateIndex`], so each recognize-act cycle
//! batch-matches all events queued at that level across worker threads
//! (see [`RuleEngine::insert_batch`] for the bulk-load entry point).
//!
//! ```
//! use rules::{Action, EventMask, Rule, RuleEngine};
//! use relation::{AttrType, Database, Schema, Value};
//!
//! let mut db = Database::new();
//! db.create_relation(
//!     Schema::builder("emp")
//!         .attr("name", AttrType::Str)
//!         .attr("salary", AttrType::Int)
//!         .build(),
//! )
//! .unwrap();
//!
//! let mut engine = RuleEngine::new(db);
//! engine
//!     .add_rule(
//!         Rule::builder("underpaid")
//!             .when("emp.salary < 15000").unwrap()
//!             .then(Action::log("below minimum"))
//!             .build(),
//!     )
//!     .unwrap();
//!
//! let report = engine
//!     .insert("emp", vec![Value::str("al"), Value::Int(9_000)])
//!     .unwrap();
//! assert_eq!(report.fired.len(), 1);
//! assert!(engine.log()[0].contains("below minimum"));
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

mod engine;
mod rule;

pub use engine::{EngineError, FireReport, Firing, RuleEngine};
pub use rule::{Action, BoundTuple, DbOp, EventMask, Rule, RuleBuilder, RuleContext, RuleId};
// The join vocabulary, re-exported so applications can hold join
// conditions and memo stats without naming the lower crates.
pub use joinmemo::MemoStats;
pub use predicate::{JoinCondition, ParsedCondition};
// The observability vocabulary, re-exported so applications can hold
// traces and registries without naming the lower crates.
pub use predindex::{MatchTrace, ResidualTrace, ShardStats, StabTrace};
pub use telemetry::{Registry, Tracer};

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{AttrType, Database, Schema, Value};

    fn engine() -> RuleEngine {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        db.create_relation(
            Schema::builder("alerts")
                .attr("message", AttrType::Str)
                .attr("level", AttrType::Int)
                .build(),
        )
        .unwrap();
        RuleEngine::new(db)
    }

    #[test]
    fn simple_trigger_fires_on_matching_insert() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("senior")
                .when("emp.age > 60")
                .unwrap()
                .then(Action::log("senior employee"))
                .build(),
        )
        .unwrap();
        let r = e
            .insert("emp", vec![Value::str("al"), Value::Int(65), Value::Int(0)])
            .unwrap();
        assert_eq!(r.fired.len(), 1);
        let r = e
            .insert("emp", vec![Value::str("bo"), Value::Int(30), Value::Int(0)])
            .unwrap();
        assert_eq!(r.fired.len(), 0);
        assert_eq!(e.total_fired(), 1);
    }

    #[test]
    fn update_and_delete_masks() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("on-delete-only")
                .when("emp.salary > 0")
                .unwrap()
                .on(EventMask {
                    on_insert: false,
                    on_update: false,
                    on_delete: true,
                })
                .then(Action::log("gone"))
                .build(),
        )
        .unwrap();
        let ev = e
            .insert("emp", vec![Value::str("c"), Value::Int(30), Value::Int(10)])
            .unwrap();
        assert_eq!(ev.fired.len(), 0, "insert must not fire a delete rule");

        // Find the tuple id and delete it.
        let id = e
            .db()
            .catalog()
            .relation("emp")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .0;
        let ev = e.delete("emp", id).unwrap();
        assert_eq!(ev.fired.len(), 1);
        assert!(e.log()[0].contains("gone"));
    }

    #[test]
    fn priority_orders_firing() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("low")
                .when("emp.age > 0")
                .unwrap()
                .priority(1)
                .then(Action::log("low"))
                .build(),
        )
        .unwrap();
        e.add_rule(
            Rule::builder("high")
                .when("emp.age > 0")
                .unwrap()
                .priority(9)
                .then(Action::log("high"))
                .build(),
        )
        .unwrap();
        let r = e
            .insert("emp", vec![Value::str("d"), Value::Int(1), Value::Int(0)])
            .unwrap();
        assert_eq!(
            r.fired.iter().map(|(_, n)| n.as_str()).collect::<Vec<_>>(),
            vec!["high", "low"]
        );
    }

    #[test]
    fn forward_chaining_cascades() {
        let mut e = engine();
        // Underpaid employees raise an alert tuple; level-2 alerts raise
        // a level-3 escalation log.
        e.add_rule(
            Rule::builder("raise-alert")
                .when("emp.salary < 1000")
                .unwrap()
                .then(Action::callback(|ctx| {
                    ctx.queue(DbOp::Insert {
                        relation: "alerts".into(),
                        values: vec![Value::str("underpaid"), Value::Int(2)],
                    });
                }))
                .build(),
        )
        .unwrap();
        e.add_rule(
            Rule::builder("escalate")
                .when("alerts.level >= 2")
                .unwrap()
                .then(Action::log("escalated"))
                .build(),
        )
        .unwrap();
        let r = e
            .insert(
                "emp",
                vec![Value::str("e"), Value::Int(20), Value::Int(500)],
            )
            .unwrap();
        assert_eq!(r.fired.len(), 2, "both rules fire through the chain");
        assert_eq!(r.ops_applied, 2, "external insert + cascaded insert");
        assert_eq!(
            e.db().catalog().relation("alerts").unwrap().len(),
            1,
            "the cascaded tuple landed"
        );
        assert!(e.log().iter().any(|l| l.contains("escalated")));
    }

    #[test]
    fn runaway_chain_hits_firing_limit() {
        let mut e = engine();
        e.set_firing_limit(50);
        // Every alert insert re-inserts an alert: infinite loop.
        e.add_rule(
            Rule::builder("loop")
                .when("alerts.level >= 0")
                .unwrap()
                .then(Action::callback(|ctx| {
                    ctx.queue(DbOp::Insert {
                        relation: "alerts".into(),
                        values: vec![Value::str("again"), Value::Int(1)],
                    });
                }))
                .build(),
        )
        .unwrap();
        let err = e
            .insert("alerts", vec![Value::str("start"), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, EngineError::FiringLimit { limit: 50 }));
    }

    #[test]
    fn update_current_action() {
        let mut e = engine();
        // Clamp salaries above 100k down to 100k. The rewritten tuple
        // re-enters matching but no longer satisfies the condition.
        e.add_rule(
            Rule::builder("salary-cap")
                .when("emp.salary > 100000")
                .unwrap()
                .then(Action::callback(|ctx| {
                    let t = ctx.event.current().expect("insert/update event").clone();
                    ctx.queue(DbOp::UpdateCurrent {
                        values: vec![t.get(0).clone(), t.get(1).clone(), Value::Int(100_000)],
                    });
                }))
                .build(),
        )
        .unwrap();
        e.insert(
            "emp",
            vec![Value::str("f"), Value::Int(40), Value::Int(150_000)],
        )
        .unwrap();
        let rel = e.db().catalog().relation("emp").unwrap();
        let (_, t) = rel.iter().next().unwrap();
        assert_eq!(t.get(2), &Value::Int(100_000));
    }

    #[test]
    fn disjunctive_condition_fires_once() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("extremes")
                .when("emp.age < 20 or emp.salary < 100")
                .unwrap()
                .then(Action::log("extreme"))
                .build(),
        )
        .unwrap();
        // Tuple matching BOTH disjuncts still fires the rule once.
        let r = e
            .insert("emp", vec![Value::str("g"), Value::Int(18), Value::Int(50)])
            .unwrap();
        assert_eq!(r.fired.len(), 1);
    }

    #[test]
    fn remove_rule_stops_firing() {
        let mut e = engine();
        let id = e
            .add_rule(
                Rule::builder("r")
                    .when("emp.age > 0")
                    .unwrap()
                    .then(Action::log("x"))
                    .build(),
            )
            .unwrap();
        assert_eq!(e.rule_count(), 1);
        e.remove_rule(id).unwrap();
        assert_eq!(e.rule_count(), 0);
        let r = e
            .insert("emp", vec![Value::str("h"), Value::Int(5), Value::Int(5)])
            .unwrap();
        assert_eq!(r.fired.len(), 0);
        assert!(matches!(e.remove_rule(id), Err(EngineError::NoSuchRule(_))));
    }

    #[test]
    fn bad_condition_is_rejected_and_rolled_back() {
        let mut e = engine();
        let err = e
            .add_rule(
                Rule::builder("bad")
                    .when("emp.age > 0 or ghost.x = 1")
                    .unwrap()
                    .build(),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Index(_)));
        // The valid disjunct must not linger in the index.
        let r = e
            .insert("emp", vec![Value::str("i"), Value::Int(9), Value::Int(9)])
            .unwrap();
        assert_eq!(r.fired.len(), 0);
    }
}

#[cfg(test)]
mod agenda_tests {
    use super::*;
    use relation::{AttrType, Database, Schema, Value};

    fn engine() -> RuleEngine {
        let mut db = Database::new();
        db.create_relation(Schema::builder("t").attr("x", AttrType::Int).build())
            .unwrap();
        RuleEngine::new(db)
    }

    #[test]
    fn equal_priority_fires_newest_first() {
        // OPS5-flavoured recency: at equal priority the most recently
        // registered rule fires first.
        let mut e = engine();
        for name in ["first", "second", "third"] {
            e.add_rule(
                Rule::builder(name)
                    .when("t.x > 0")
                    .unwrap()
                    .then(Action::log(name))
                    .build(),
            )
            .unwrap();
        }
        let r = e.insert("t", vec![Value::Int(1)]).unwrap();
        let order: Vec<&str> = r.fired.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(order, vec!["third", "second", "first"]);
    }

    #[test]
    fn priority_beats_recency() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("old-but-urgent")
                .when("t.x > 0")
                .unwrap()
                .priority(5)
                .then(Action::log("urgent"))
                .build(),
        )
        .unwrap();
        e.add_rule(
            Rule::builder("new-but-lazy")
                .when("t.x > 0")
                .unwrap()
                .priority(-5)
                .then(Action::log("lazy"))
                .build(),
        )
        .unwrap();
        let r = e.insert("t", vec![Value::Int(1)]).unwrap();
        let order: Vec<&str> = r.fired.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(order, vec!["old-but-urgent", "new-but-lazy"]);
    }

    #[test]
    fn rules_listing() {
        let mut e = engine();
        let a = e
            .add_rule(Rule::builder("a").when("t.x > 0").unwrap().build())
            .unwrap();
        let _b = e
            .add_rule(Rule::builder("b").when("t.x < 0").unwrap().build())
            .unwrap();
        let mut names: Vec<String> = e.rules().map(|(_, n)| n.to_string()).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        e.remove_rule(a).unwrap();
        assert_eq!(e.rules().count(), 1);
    }

    #[test]
    fn non_matching_events_fire_nothing_and_cost_no_log() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("never")
                .when("t.x > 1000000")
                .unwrap()
                .then(Action::log("?"))
                .build(),
        )
        .unwrap();
        for i in 0..50 {
            let r = e.insert("t", vec![Value::Int(i)]).unwrap();
            assert!(r.fired.is_empty());
        }
        assert!(e.log().is_empty());
        assert_eq!(e.total_fired(), 0);
    }
}

#[cfg(test)]
mod retroactive_tests {
    use super::*;
    use relation::{AttrType, Database, Schema, Value};

    fn seeded_engine() -> RuleEngine {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        db.create_relation(Schema::builder("alerts").attr("who", AttrType::Str).build())
            .unwrap();
        let mut e = RuleEngine::new(db);
        for (n, s) in [("al", 900), ("bo", 5_000), ("cy", 700), ("di", 80_000)] {
            e.insert("emp", vec![Value::str(n), Value::Int(s)]).unwrap();
        }
        e
    }

    #[test]
    fn retroactive_rule_fires_on_existing_tuples() {
        let mut e = seeded_engine();
        let (_, report) = e
            .add_rule_retroactive(
                Rule::builder("underpaid")
                    .when("emp.salary < 1000")
                    .unwrap()
                    .then(Action::log("backpay"))
                    .build(),
            )
            .unwrap();
        // al (900) and cy (700) already violate; bo and di do not.
        assert_eq!(report.fired.len(), 2);
        assert_eq!(e.log().len(), 2);
        // And it keeps firing on future inserts.
        let r = e
            .insert("emp", vec![Value::str("ed"), Value::Int(100)])
            .unwrap();
        assert_eq!(r.fired.len(), 1);
    }

    #[test]
    fn retroactive_backfill_does_not_refire_other_rules() {
        let mut e = seeded_engine();
        e.add_rule(
            Rule::builder("everything")
                .when("emp.salary >= 0")
                .unwrap()
                .then(Action::log("E"))
                .build(),
        )
        .unwrap();
        // The pre-existing rule must not re-fire during another rule's
        // backfill.
        let (_, report) = e
            .add_rule_retroactive(
                Rule::builder("rich")
                    .when("emp.salary > 50000")
                    .unwrap()
                    .then(Action::log("R"))
                    .build(),
            )
            .unwrap();
        assert_eq!(report.fired.len(), 1, "only di matches the new rule");
        assert!(report.fired.iter().all(|(_, n)| n == "rich"));
        assert_eq!(
            e.log()
                .iter()
                .filter(|l| l.contains("[everything]"))
                .count(),
            0,
            "pre-existing rule re-fired during backfill"
        );
    }

    #[test]
    fn retroactive_cascades_chain_through_all_rules() {
        let mut e = seeded_engine();
        e.add_rule(
            Rule::builder("on-alert")
                .when(r#"alerts.who <= "zzzz""#)
                .unwrap()
                .then(Action::log("alert seen"))
                .build(),
        )
        .unwrap();
        let (_, report) = e
            .add_rule_retroactive(
                Rule::builder("flag-underpaid")
                    .when("emp.salary < 1000")
                    .unwrap()
                    .then(Action::callback(|ctx| {
                        let t = ctx.event.current().expect("insert").clone();
                        ctx.queue(DbOp::Insert {
                            relation: "alerts".into(),
                            values: vec![t.get(0).clone()],
                        });
                    }))
                    .build(),
            )
            .unwrap();
        // 2 backfill firings + 2 cascaded alert firings.
        assert_eq!(report.fired.len(), 4);
        assert_eq!(e.db().catalog().relation("alerts").unwrap().len(), 2);
    }

    #[test]
    fn retroactive_disjunction_fires_once_per_tuple() {
        let mut e = seeded_engine();
        let (_, report) = e
            .add_rule_retroactive(
                Rule::builder("extremes")
                    .when("emp.salary < 1000 or emp.salary < 5000")
                    .unwrap()
                    .then(Action::log("X"))
                    .build(),
            )
            .unwrap();
        // al and cy match both disjuncts but fire once each.
        assert_eq!(report.fired.len(), 2);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use relation::{AttrType, Database, Schema, Value};

    fn engine() -> RuleEngine {
        let mut db = Database::new();
        db.create_relation(Schema::builder("t").attr("x", AttrType::Int).build())
            .unwrap();
        db.create_relation(Schema::builder("log").attr("x", AttrType::Int).build())
            .unwrap();
        RuleEngine::new(db)
    }

    #[test]
    fn insert_batch_fires_like_serial_inserts() {
        let rule = |e: &mut RuleEngine| {
            e.add_rule(
                Rule::builder("pos")
                    .when("t.x > 0")
                    .unwrap()
                    .then(Action::log("pos"))
                    .build(),
            )
            .unwrap();
            e.add_rule(
                Rule::builder("big")
                    .when("t.x > 5")
                    .unwrap()
                    .priority(9)
                    .then(Action::log("big"))
                    .build(),
            )
            .unwrap();
        };
        let rows: Vec<Vec<Value>> = (-3..10).map(|i| vec![Value::Int(i)]).collect();

        let mut serial = engine();
        rule(&mut serial);
        let mut serial_fired = Vec::new();
        for row in rows.clone() {
            let r = serial.insert("t", vec![row[0].clone()]).unwrap();
            serial_fired.extend(r.fired);
        }

        let mut batched = engine();
        rule(&mut batched);
        let r = batched.insert_batch("t", rows).unwrap();

        assert_eq!(r.fired, serial_fired, "batch must fire in serial order");
        assert_eq!(r.ops_applied, 13);
        assert_eq!(batched.log(), serial.log());
    }

    #[test]
    fn insert_batch_cascades_breadth_first() {
        let mut e = engine();
        // Every t-insert spawns a log-insert; log rules then fire.
        e.add_rule(
            Rule::builder("spawn")
                .when("t.x >= 0")
                .unwrap()
                .then(Action::callback(|ctx| {
                    let t = ctx.event.current().expect("insert").clone();
                    ctx.queue(DbOp::Insert {
                        relation: "log".into(),
                        values: vec![t.get(0).clone()],
                    });
                }))
                .build(),
        )
        .unwrap();
        e.add_rule(
            Rule::builder("seen")
                .when("log.x >= 0")
                .unwrap()
                .then(Action::log("seen"))
                .build(),
        )
        .unwrap();
        let r = e
            .insert_batch("t", (0..4).map(|i| vec![Value::Int(i)]).collect())
            .unwrap();
        // 4 spawns, then 4 seens — the spawns all precede the seens
        // because cascaded events form the next matching level.
        let names: Vec<&str> = r.fired.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["spawn", "spawn", "spawn", "spawn", "seen", "seen", "seen", "seen"]
        );
        assert_eq!(r.ops_applied, 8);
        assert_eq!(e.db().catalog().relation("log").unwrap().len(), 4);
    }

    #[test]
    fn insert_batch_respects_firing_limit() {
        let mut e = engine();
        e.set_firing_limit(3);
        e.add_rule(
            Rule::builder("any")
                .when("t.x >= 0")
                .unwrap()
                .then(Action::log("x"))
                .build(),
        )
        .unwrap();
        let err = e
            .insert_batch("t", (0..10).map(|i| vec![Value::Int(i)]).collect())
            .unwrap_err();
        assert!(matches!(err, EngineError::FiringLimit { limit: 3 }));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut e = engine();
        let r = e.insert_batch("t", Vec::new()).unwrap();
        assert!(r.fired.is_empty());
        assert_eq!(r.ops_applied, 0);
    }
}

#[cfg(test)]
mod counter_tests {
    use super::*;
    use relation::{AttrType, Database, Schema, Value};

    #[test]
    fn per_rule_fire_counts() {
        let mut db = Database::new();
        db.create_relation(Schema::builder("t").attr("x", AttrType::Int).build())
            .unwrap();
        let mut e = RuleEngine::new(db);
        let hot = e
            .add_rule(Rule::builder("hot").when("t.x >= 0").unwrap().build())
            .unwrap();
        let cold = e
            .add_rule(Rule::builder("cold").when("t.x < 0").unwrap().build())
            .unwrap();
        for i in 0..10 {
            e.insert("t", vec![Value::Int(i)]).unwrap();
        }
        e.insert("t", vec![Value::Int(-1)]).unwrap();
        let counts: std::collections::HashMap<RuleId, u64> =
            e.fire_counts().map(|(id, _, n)| (id, n)).collect();
        assert_eq!(counts[&hot], 10);
        assert_eq!(counts[&cold], 1);
        assert_eq!(e.total_fired(), 11);
    }
}

#[cfg(test)]
mod join_tests {
    use super::*;
    use relation::{AttrType, Database, Schema, TupleId, Value};

    fn engine() -> RuleEngine {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("dno", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        db.create_relation(
            Schema::builder("dept")
                .attr("dno", AttrType::Int)
                .attr("floor", AttrType::Int)
                .build(),
        )
        .unwrap();
        RuleEngine::new(db)
    }

    fn emp(name: &str, dno: i64, salary: i64) -> Vec<Value> {
        vec![Value::str(name), Value::Int(dno), Value::Int(salary)]
    }

    fn dept(dno: i64, floor: i64) -> Vec<Value> {
        vec![Value::Int(dno), Value::Int(floor)]
    }

    #[test]
    fn join_rule_fires_when_match_completes() {
        let mut e = engine();
        let id = e
            .add_rule(
                Rule::builder("same-dept")
                    .when("emp.dno = dept.dno and dept.floor = 1")
                    .unwrap()
                    .then(Action::log("first-floor employee"))
                    .build(),
            )
            .unwrap();
        // dept arrives first: partial match only.
        assert!(e.insert("dept", dept(4, 1)).unwrap().fired.is_empty());
        // emp completes it.
        let r = e.insert("emp", emp("al", 4, 100)).unwrap();
        assert_eq!(r.fired, vec![(id, "same-dept".to_string())]);
        // The log line names both bound tuples.
        assert!(e.log()[0].contains("dept#"), "log: {:?}", e.log());
        assert!(e.log()[0].contains("emp#"), "log: {:?}", e.log());
        // Wrong floor or wrong dno never completes.
        assert!(e.insert("dept", dept(5, 2)).unwrap().fired.is_empty());
        assert!(e.insert("emp", emp("bo", 5, 1)).unwrap().fired.is_empty());
        assert_eq!(e.join_matches(id).unwrap()[0].len(), 1);
    }

    #[test]
    fn join_rule_fires_in_reverse_arrival_order() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("same-dept")
                .when("emp.dno = dept.dno")
                .unwrap()
                .then(Action::log("joined"))
                .build(),
        )
        .unwrap();
        assert!(e.insert("emp", emp("al", 4, 100)).unwrap().fired.is_empty());
        let r = e.insert("dept", dept(4, 1)).unwrap();
        assert_eq!(r.fired.len(), 1);
    }

    #[test]
    fn callback_sees_all_bound_tuples() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("pair")
                .when("emp.dno = dept.dno")
                .unwrap()
                .then(Action::callback(|ctx| {
                    let names: Vec<String> = ctx
                        .bindings
                        .iter()
                        .map(|b| format!("{}#{}", b.relation, b.id.0))
                        .collect();
                    ctx.log(names.join("+"));
                }))
                .build(),
        )
        .unwrap();
        e.insert("dept", dept(4, 1)).unwrap();
        e.insert("emp", emp("al", 4, 100)).unwrap();
        // Premises are sorted by relation name: dept before emp.
        assert_eq!(e.log(), &["dept#0+emp#0".to_string()]);
    }

    #[test]
    fn delete_retracts_and_reinsert_fires_once() {
        let mut e = engine();
        let id = e
            .add_rule(
                Rule::builder("j")
                    .when("emp.dno = dept.dno")
                    .unwrap()
                    .then(Action::log("match"))
                    .build(),
            )
            .unwrap();
        e.insert("dept", dept(4, 1)).unwrap();
        let r = e.insert("emp", emp("al", 4, 100)).unwrap();
        assert_eq!(r.fired.len(), 1);
        // Delete the emp tuple: the complete match is retracted.
        e.delete("emp", TupleId(0)).unwrap();
        assert!(e.join_matches(id).unwrap()[0].is_empty());
        // Reinsert: exactly ONE new firing, not two (the regression the
        // retraction protocol exists to prevent).
        let r = e.insert("emp", emp("al", 4, 100)).unwrap();
        assert_eq!(r.fired.len(), 1);
        assert_eq!(e.join_matches(id).unwrap()[0].len(), 1);
        assert_eq!(e.total_fired(), 2);
    }

    #[test]
    fn update_rebinds_the_join() {
        let mut e = engine();
        let id = e
            .add_rule(
                Rule::builder("j")
                    .when("emp.dno = dept.dno")
                    .unwrap()
                    .then(Action::log("match"))
                    .build(),
            )
            .unwrap();
        e.insert("dept", dept(4, 1)).unwrap();
        e.insert("dept", dept(5, 2)).unwrap();
        e.insert("emp", emp("al", 4, 100)).unwrap();
        assert_eq!(e.join_matches(id).unwrap()[0], vec![vec![0, 0]]);
        // Move al to dept 5: old match retracts, new one forms and
        // fires again (an update is a retract + extend).
        let r = e.update("emp", TupleId(0), emp("al", 5, 100)).unwrap();
        assert_eq!(r.fired.len(), 1);
        assert_eq!(e.join_matches(id).unwrap()[0], vec![vec![1, 0]]);
        // Move al to a dept with no tuple: no matches at all.
        e.update("emp", TupleId(0), emp("al", 9, 100)).unwrap();
        assert!(e.join_matches(id).unwrap()[0].is_empty());
    }

    #[test]
    fn interval_join_condition() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("earns-more-than-floor")
                .when("emp.dno = dept.dno and emp.salary > dept.floor")
                .unwrap()
                .then(Action::log("above"))
                .build(),
        )
        .unwrap();
        e.insert("dept", dept(4, 50)).unwrap();
        assert!(e.insert("emp", emp("lo", 4, 10)).unwrap().fired.is_empty());
        assert_eq!(e.insert("emp", emp("hi", 4, 90)).unwrap().fired.len(), 1);
    }

    #[test]
    fn retroactive_join_backfills_existing_matches() {
        let mut e = engine();
        e.insert("dept", dept(1, 1)).unwrap();
        e.insert("dept", dept(2, 2)).unwrap();
        e.insert("emp", emp("al", 1, 100)).unwrap();
        e.insert("emp", emp("bo", 2, 100)).unwrap();
        e.insert("emp", emp("cy", 1, 100)).unwrap();
        let (id, report) = e
            .add_rule_retroactive(
                Rule::builder("first-floor")
                    .when("emp.dno = dept.dno and dept.floor = 1")
                    .unwrap()
                    .then(Action::log("backfill"))
                    .build(),
            )
            .unwrap();
        // al and cy join dept 1 (floor 1); bo joins dept 2 (floor 2).
        assert_eq!(report.fired.len(), 2);
        assert!(report.firings.iter().all(|f| f.bindings.len() == 2));
        assert_eq!(e.join_matches(id).unwrap()[0].len(), 2);
        // And the memo keeps working incrementally afterwards.
        assert_eq!(e.insert("emp", emp("di", 1, 1)).unwrap().fired.len(), 1);
    }

    #[test]
    fn plain_add_rule_seeds_memo_without_firing() {
        let mut e = engine();
        e.insert("dept", dept(1, 1)).unwrap();
        e.insert("emp", emp("al", 1, 100)).unwrap();
        let id = e
            .add_rule(
                Rule::builder("j")
                    .when("emp.dno = dept.dno")
                    .unwrap()
                    .then(Action::log("m"))
                    .build(),
            )
            .unwrap();
        // The existing pair is memoized (so deletes retract correctly)
        // but did NOT fire.
        assert_eq!(e.total_fired(), 0);
        assert_eq!(e.join_matches(id).unwrap()[0].len(), 1);
        // A later emp extends against the seeded dept token.
        assert_eq!(e.insert("emp", emp("bo", 1, 1)).unwrap().fired.len(), 1);
    }

    #[test]
    fn remove_rule_unregisters_join_premises() {
        let mut e = engine();
        let id = e
            .add_rule(
                Rule::builder("j")
                    .when("emp.dno = dept.dno")
                    .unwrap()
                    .then(Action::log("m"))
                    .build(),
            )
            .unwrap();
        e.insert("dept", dept(4, 1)).unwrap();
        e.remove_rule(id).unwrap();
        assert!(e.insert("emp", emp("al", 4, 1)).unwrap().fired.is_empty());
        assert!(e.join_stats().is_empty());
    }

    #[test]
    fn drop_relation_unregisters_whole_join_condition() {
        let mut e = engine();
        let id = e
            .add_rule(
                Rule::builder("j")
                    .when("emp.dno = dept.dno")
                    .unwrap()
                    .then(Action::log("m"))
                    .build(),
            )
            .unwrap();
        e.insert("dept", dept(4, 1)).unwrap();
        e.drop_relation("dept").unwrap();
        // The join can never complete again — emp inserts are inert.
        assert!(e.insert("emp", emp("al", 4, 1)).unwrap().fired.is_empty());
        assert!(e.rule(id).unwrap().joins.is_empty());
        assert!(e.join_stats().is_empty());
    }

    #[test]
    fn restore_reseeds_memo_with_identical_fingerprint() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("j")
                .when("emp.dno = dept.dno and dept.floor = 1")
                .unwrap()
                .then(Action::log("m"))
                .build(),
        )
        .unwrap();
        e.insert("dept", dept(1, 1)).unwrap();
        e.insert("dept", dept(2, 2)).unwrap();
        e.insert("emp", emp("al", 1, 100)).unwrap();
        e.insert("emp", emp("bo", 2, 100)).unwrap();
        let fp = e.join_fingerprint();

        let rules: Vec<(RuleId, Rule, u64)> = e
            .rules_detail()
            .map(|(id, r, n)| (id, r.clone(), n))
            .collect();
        let mut restored = RuleEngine::restore(
            e.db().clone(),
            rules,
            e.next_rule_id(),
            e.total_fired(),
            e.log().to_vec(),
        )
        .unwrap();
        assert_eq!(restored.join_fingerprint(), fp);
        assert_eq!(
            restored.join_matches(RuleId(0)).unwrap(),
            e.join_matches(RuleId(0)).unwrap()
        );
        // The restored memo keeps extending incrementally.
        assert_eq!(
            restored.insert("emp", emp("cy", 1, 1)).unwrap().fired.len(),
            1
        );
        assert_ne!(restored.join_fingerprint(), fp);
    }

    #[test]
    fn mixed_plain_and_join_rule_alternatives() {
        // One rule: a plain disjunct OR a join disjunct.
        let mut e = engine();
        let id = e
            .add_rule(
                Rule::builder("either")
                    .when("emp.salary > 1000000 or emp.dno = dept.dno")
                    .unwrap()
                    .then(Action::log("hit"))
                    .build(),
            )
            .unwrap();
        assert_eq!(e.rule(id).unwrap().conditions.len(), 1);
        assert_eq!(e.rule(id).unwrap().joins.len(), 1);
        // Plain disjunct fires alone.
        assert_eq!(
            e.insert("emp", emp("rich", 9, 2_000_000))
                .unwrap()
                .fired
                .len(),
            1
        );
        // Join disjunct completes independently.
        e.insert("dept", dept(4, 1)).unwrap();
        assert_eq!(e.insert("emp", emp("al", 4, 10)).unwrap().fired.len(), 1);
    }

    #[test]
    fn three_premise_chain() {
        let mut e = engine();
        e.create_relation(
            Schema::builder("proj")
                .attr("dno", AttrType::Int)
                .attr("budget", AttrType::Int)
                .build(),
        )
        .unwrap();
        let id = e
            .add_rule(
                Rule::builder("triple")
                    .when("emp.dno = dept.dno and dept.dno = proj.dno")
                    .unwrap()
                    .then(Action::log("3-way"))
                    .build(),
            )
            .unwrap();
        e.insert("emp", emp("al", 4, 1)).unwrap();
        e.insert("proj", vec![Value::Int(4), Value::Int(9)])
            .unwrap();
        // Last arrival completes the 3-way join.
        let r = e.insert("dept", dept(4, 1)).unwrap();
        assert_eq!(r.fired.len(), 1);
        assert_eq!(r.firings[0].bindings.len(), 3);
        assert_eq!(e.join_matches(id).unwrap()[0], vec![vec![0, 0, 0]]);
    }

    #[test]
    fn explain_insert_narrates_join_steps() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("same-dept")
                .when("emp.dno = dept.dno")
                .unwrap()
                .then(Action::log("m"))
                .build(),
        )
        .unwrap();
        let (trace, _) = e.explain_insert("dept", dept(4, 1)).unwrap();
        assert!(
            trace
                .join_steps
                .iter()
                .any(|s| s.contains("premise 1 of rule \"same-dept\"")),
            "join steps: {:?}",
            trace.join_steps
        );
        let (trace, report) = e.explain_insert("emp", emp("al", 4, 1)).unwrap();
        assert_eq!(report.fired.len(), 1);
        assert!(
            trace
                .join_steps
                .iter()
                .any(|s| s.contains("complete match fired rule \"same-dept\"")),
            "join steps: {:?}",
            trace.join_steps
        );
        assert!(trace.to_string().contains("join memo (beta layer)"));
    }

    #[test]
    fn join_metrics_families_record() {
        let mut e = engine();
        e.attach_metrics(std::sync::Arc::new(Registry::new()));
        e.add_rule(
            Rule::builder("j")
                .when("emp.dno = dept.dno")
                .unwrap()
                .then(Action::log("m"))
                .build(),
        )
        .unwrap();
        e.insert("dept", dept(4, 1)).unwrap();
        e.insert("emp", emp("al", 4, 1)).unwrap();
        e.delete("emp", TupleId(0)).unwrap();
        let m = e.metrics();
        assert!(m.counter_value("join_probes_total").unwrap() >= 1);
        assert!(m.counter_value("join_retractions_total").unwrap() >= 1);
        let (samples, _) = m.histogram_totals("join_partial_matches").unwrap();
        assert!(samples >= 2);
        assert!(m.histogram_totals("join_memo_bytes").is_some());
    }
}

#[cfg(test)]
mod drop_restore_tests {
    use super::*;
    use relation::{AttrType, Database, Schema, Value};

    fn engine() -> RuleEngine {
        let mut db = Database::new();
        db.create_relation(Schema::builder("emp").attr("x", AttrType::Int).build())
            .unwrap();
        db.create_relation(Schema::builder("dept").attr("y", AttrType::Int).build())
            .unwrap();
        RuleEngine::new(db)
    }

    #[test]
    fn dropped_relation_stops_matching() {
        let mut e = engine();
        let emp_only = e
            .add_rule(Rule::builder("emp-only").when("emp.x > 0").unwrap().build())
            .unwrap();
        let both = e
            .add_rule(
                Rule::builder("both")
                    .when("emp.x > 5 or dept.y > 5")
                    .unwrap()
                    .build(),
            )
            .unwrap();
        assert_eq!(e.insert("emp", vec![Value::Int(9)]).unwrap().fired.len(), 2);
        assert_eq!(
            e.insert("dept", vec![Value::Int(9)]).unwrap().fired.len(),
            1
        );

        let rel = e.drop_relation("emp").unwrap();
        assert_eq!(rel.schema().name(), "emp");
        assert!(matches!(
            e.drop_relation("emp"),
            Err(EngineError::Catalog(_))
        ));

        // The surviving disjunct of "both" still matches.
        let report = e.insert("dept", vec![Value::Int(9)]).unwrap();
        assert_eq!(report.fired, vec![(both, "both".to_string())]);

        // Mutating the dropped relation is a catalog error, and
        // recreating the name does NOT resurrect the old conditions.
        assert!(e.insert("emp", vec![Value::Int(9)]).is_err());
        e.create_relation(Schema::builder("emp").attr("x", AttrType::Int).build())
            .unwrap();
        assert!(e
            .insert("emp", vec![Value::Int(9)])
            .unwrap()
            .fired
            .is_empty());

        // Both rules survive as registered (one dormant), and new rules
        // against the recreated relation work.
        assert_eq!(e.rule_count(), 2);
        assert!(e.rule(emp_only).unwrap().conditions.is_empty());
        e.add_rule(Rule::builder("fresh").when("emp.x > 0").unwrap().build())
            .unwrap();
        assert_eq!(e.insert("emp", vec![Value::Int(1)]).unwrap().fired.len(), 1);
    }

    #[test]
    fn restore_round_trips_engine_state() {
        let mut e = engine();
        e.add_rule(
            Rule::builder("a")
                .when("emp.x > 0")
                .unwrap()
                .then(Action::log("pos"))
                .build(),
        )
        .unwrap();
        e.add_rule(
            Rule::builder("b")
                .when("dept.y < 0")
                .unwrap()
                .then(Action::log("neg"))
                .build(),
        )
        .unwrap();
        e.insert("emp", vec![Value::Int(3)]).unwrap();
        e.insert("dept", vec![Value::Int(-3)]).unwrap();

        let rules: Vec<(RuleId, Rule, u64)> = e
            .rules_detail()
            .map(|(id, r, n)| (id, r.clone(), n))
            .collect();
        let mut r = RuleEngine::restore(
            e.db().clone(),
            rules,
            e.next_rule_id(),
            e.total_fired(),
            e.log().to_vec(),
        )
        .unwrap();

        assert_eq!(r.rule_count(), 2);
        assert_eq!(r.total_fired(), 2);
        assert_eq!(r.log(), e.log());
        // Matching behaves identically after the rebuild...
        assert_eq!(r.insert("emp", vec![Value::Int(7)]).unwrap().fired.len(), 1);
        assert!(r
            .insert("emp", vec![Value::Int(-7)])
            .unwrap()
            .fired
            .is_empty());
        // ...and id allocation continues where the original left off.
        let next = r
            .add_rule(Rule::builder("c").when("emp.x = 0").unwrap().build())
            .unwrap();
        assert_eq!(next, RuleId(e.next_rule_id()));
    }

    #[test]
    fn metrics_count_firings_cascades_and_match_work() {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        db.create_relation(
            Schema::builder("alerts")
                .attr("message", AttrType::Str)
                .attr("level", AttrType::Int)
                .build(),
        )
        .unwrap();
        let mut e = RuleEngine::with_metrics(db);
        e.add_rule(
            Rule::builder("raise-alert")
                .when("emp.salary < 1000")
                .unwrap()
                .then(Action::callback(|ctx| {
                    ctx.queue(DbOp::Insert {
                        relation: "alerts".into(),
                        values: vec![Value::str("underpaid"), Value::Int(2)],
                    });
                }))
                .build(),
        )
        .unwrap();
        e.add_rule(
            Rule::builder("escalate")
                .when("alerts.level >= 2")
                .unwrap()
                .then(Action::log("escalated"))
                .build(),
        )
        .unwrap();

        e.insert(
            "emp",
            vec![Value::str("al"), Value::Int(30), Value::Int(500)],
        )
        .unwrap();

        let m = e.metrics();
        assert_eq!(m.counter_value("rules_fired_total"), Some(2));
        // 1 external insert + 1 cascaded alert insert.
        assert_eq!(m.counter_value("rules_ops_applied_total"), Some(2));
        // One chain, two levels deep, one event per level.
        assert_eq!(m.histogram_totals("rules_cascade_depth"), Some((1, 2)));
        assert_eq!(m.histogram_totals("rules_events_per_level"), Some((2, 2)));
        // The index recorded through the same registry: both tuples
        // were matched, and the emp stab did real IBS-tree work.
        assert_eq!(m.counter_value("predindex_match_tuples_total"), Some(2));
        assert!(
            m.counter_value("predindex_ibs_nodes_visited_total")
                .unwrap()
                >= 1
        );
        let text = m.render_text();
        assert!(text.contains("rules_fired_total 2"));
        assert!(text.contains("predindex_shard_lock_wait_nanos_total{shard="));
    }

    #[test]
    fn explain_insert_traces_the_match_and_still_chains() {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        let mut e = RuleEngine::new(db);
        e.add_rule(
            Rule::builder("senior-underpaid")
                .when("emp.age > 60 and emp.salary < 20000")
                .unwrap()
                .then(Action::log("flagged"))
                .build(),
        )
        .unwrap();
        e.add_rule(
            Rule::builder("rich")
                .when("emp.salary >= 90000")
                .unwrap()
                .then(Action::log("rich"))
                .build(),
        )
        .unwrap();

        let (trace, report) = e
            .explain_insert(
                "emp",
                vec![Value::str("al"), Value::Int(65), Value::Int(12_000)],
            )
            .unwrap();
        assert_eq!(report.fired.len(), 1);
        assert!(trace.relation_indexed);
        assert!(trace.shard.is_some());
        // Attribute names come from the schema, not positions.
        let names: Vec<&str> = trace.stabs.iter().map(|s| s.attr_name.as_str()).collect();
        assert!(names.contains(&"age") || names.contains(&"salary"));
        // Only senior-underpaid partially matches, and it passes.
        assert_eq!(trace.partial_matches(), 1);
        assert_eq!(trace.matched().len(), 1);
        let shown = trace.to_string();
        assert!(shown.contains("EXPLAIN match emp"));
        assert!(shown.contains("residual tests"));
        // The tuple really was inserted and the chain really ran.
        assert!(e.log()[0].contains("flagged"));
    }
}
