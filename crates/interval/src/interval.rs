//! The [`Interval`] type: a possibly-degenerate, possibly-open-ended
//! interval over a totally ordered domain.

use crate::bound::{Lower, Upper};
use std::fmt;

/// Error returned when constructing an ill-formed interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalError {
    /// The lower endpoint is greater than the upper endpoint.
    Inverted,
    /// Both endpoints are at the same value but at least one is exclusive,
    /// so the interval contains no points.
    Empty,
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::Inverted => write!(f, "interval endpoints are inverted"),
            IntervalError::Empty => write!(f, "interval is empty"),
        }
    }
}

impl std::error::Error for IntervalError {}

/// An interval over `K`, the exact family the paper's range clauses
/// generate: `const1 ρ1 x ρ2 const2` with ρ ∈ {<, ≤}, equality (a point),
/// and open-ended intervals with an endpoint at ±∞.
///
/// Invariant: the interval is non-empty (enforced at construction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Interval<K> {
    lo: Lower<K>,
    hi: Upper<K>,
}

impl<K: Ord + Clone> Interval<K> {
    /// Builds an interval from explicit bounds, rejecting empty or
    /// inverted ones.
    pub fn new(lo: Lower<K>, hi: Upper<K>) -> Result<Self, IntervalError> {
        if let (Some(a), Some(b)) = (lo.value(), hi.value()) {
            match a.cmp(b) {
                std::cmp::Ordering::Greater => return Err(IntervalError::Inverted),
                std::cmp::Ordering::Equal => {
                    if !(lo.is_inclusive() && hi.is_inclusive()) {
                        return Err(IntervalError::Empty);
                    }
                }
                std::cmp::Ordering::Less => {}
            }
        }
        Ok(Interval { lo, hi })
    }

    /// The degenerate interval `[k, k]` — an equality predicate.
    pub fn point(k: K) -> Self {
        Interval {
            lo: Lower::Inclusive(k.clone()),
            hi: Upper::Inclusive(k),
        }
    }

    /// `[a, b]`. Panics if `a > b` (programmer error in literals; use
    /// [`Interval::new`] for data-driven construction).
    pub fn closed(a: K, b: K) -> Self {
        // srclint:allow(no-panic-in-lib): documented panic — literal-convenience constructor; data-driven callers use Interval::new
        Self::new(Lower::Inclusive(a), Upper::Inclusive(b)).expect("closed(a, b) requires a <= b")
    }

    /// `(a, b)`. Panics if empty.
    pub fn open(a: K, b: K) -> Self {
        // srclint:allow(no-panic-in-lib): documented panic — literal-convenience constructor; data-driven callers use Interval::new
        Self::new(Lower::Exclusive(a), Upper::Exclusive(b)).expect("open(a, b) requires a < b")
    }

    /// `[a, b)`. Panics if empty.
    pub fn closed_open(a: K, b: K) -> Self {
        Self::new(Lower::Inclusive(a), Upper::Exclusive(b))
            // srclint:allow(no-panic-in-lib): documented panic — literal-convenience constructor; data-driven callers use Interval::new
            .expect("closed_open(a, b) requires a < b")
    }

    /// `(a, b]`. Panics if empty.
    pub fn open_closed(a: K, b: K) -> Self {
        Self::new(Lower::Exclusive(a), Upper::Inclusive(b))
            // srclint:allow(no-panic-in-lib): documented panic — literal-convenience constructor; data-driven callers use Interval::new
            .expect("open_closed(a, b) requires a < b")
    }

    /// `[a, +∞)` — the paper's `x ≥ a`.
    pub fn at_least(a: K) -> Self {
        Interval {
            lo: Lower::Inclusive(a),
            hi: Upper::Unbounded,
        }
    }

    /// `(a, +∞)` — `x > a`.
    pub fn greater_than(a: K) -> Self {
        Interval {
            lo: Lower::Exclusive(a),
            hi: Upper::Unbounded,
        }
    }

    /// `(-∞, b]` — `x ≤ b`.
    pub fn at_most(b: K) -> Self {
        Interval {
            lo: Lower::Unbounded,
            hi: Upper::Inclusive(b),
        }
    }

    /// `(-∞, b)` — `x < b`.
    pub fn less_than(b: K) -> Self {
        Interval {
            lo: Lower::Unbounded,
            hi: Upper::Exclusive(b),
        }
    }

    /// `(-∞, +∞)` — matches every value.
    pub fn unbounded() -> Self {
        Interval {
            lo: Lower::Unbounded,
            hi: Upper::Unbounded,
        }
    }

    /// The lower bound.
    #[inline]
    pub fn lo(&self) -> &Lower<K> {
        &self.lo
    }

    /// The upper bound.
    #[inline]
    pub fn hi(&self) -> &Upper<K> {
        &self.hi
    }

    /// Does the interval contain the point `x`? This is the stabbing test
    /// every index structure must agree with.
    #[inline]
    pub fn contains(&self, x: &K) -> bool {
        self.lo.admits(x) && self.hi.admits(x)
    }

    /// Does the interval contain the *entire open range* `(lo_fence,
    /// hi_fence)` (with `None` meaning ∓∞)?
    ///
    /// This is the IBS-tree subtree-coverage test: every key that could
    /// ever be inserted under a tree node lies strictly between the
    /// node's descent fences, so an interval covering that open range may
    /// be recorded with a single `<` or `>` mark on the node.
    #[inline]
    pub fn covers_open_range(&self, lo_fence: Option<&K>, hi_fence: Option<&K>) -> bool {
        self.lo.admits_all_above(lo_fence) && self.hi.admits_all_below(hi_fence)
    }

    /// Does the interval intersect the open range `(lo_fence, hi_fence)`
    /// (with `None` meaning ∓∞)?
    ///
    /// Used by mark placement to decide whether a descent must continue
    /// into a subtree. The test treats the domain as dense; in discrete
    /// domains it can report overlap with a range that contains no
    /// representable key, which costs a vacuous descent but never places
    /// an unsound mark.
    #[inline]
    pub fn overlaps_open_range(&self, lo_fence: Option<&K>, hi_fence: Option<&K>) -> bool {
        let extends_above = match (self.hi.value(), lo_fence) {
            (None, _) | (_, None) => true,
            (Some(h), Some(a)) => h > a,
        };
        let extends_below = match (self.lo.value(), hi_fence) {
            (None, _) | (_, None) => true,
            (Some(l), Some(b)) => l < b,
        };
        extends_above && extends_below
    }

    /// Is this interval a single point (an equality predicate)?
    pub fn is_point(&self) -> bool {
        match (self.lo.value(), self.hi.value()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Do two intervals share at least one point?
    pub fn overlaps(&self, other: &Self) -> bool {
        // A and B overlap iff A's lower end is admitted by B's upper end
        // and vice versa, phrased without materializing a witness point:
        // they are disjoint iff one ends strictly before the other begins.
        !(Self::ends_before(&self.hi, &other.lo) || Self::ends_before(&other.hi, &self.lo))
    }

    /// The intersection of two intervals, or `None` if they share no
    /// point. Used to fold several range clauses on one attribute into a
    /// single interval (`a > 5 and a <= 10` → `(5, 10]`).
    pub fn intersect(&self, other: &Self) -> Option<Self> {
        let lo = std::cmp::max(self.lo.clone(), other.lo.clone());
        let hi = std::cmp::min(self.hi.clone(), other.hi.clone());
        Interval::new(lo, hi).ok()
    }

    /// Does an upper bound end strictly before a lower bound begins
    /// (leaving no common point)?
    fn ends_before(hi: &Upper<K>, lo: &Lower<K>) -> bool {
        match (hi.value(), lo.value()) {
            (Some(h), Some(l)) => match h.cmp(l) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => !(hi.is_inclusive() && lo.is_inclusive()),
                std::cmp::Ordering::Greater => false,
            },
            // An unbounded end never cuts the other interval off.
            _ => false,
        }
    }
}

impl<K: fmt::Display> fmt::Display for Interval<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Lower::Unbounded => write!(f, "(-inf")?,
            Lower::Inclusive(v) => write!(f, "[{v}")?,
            Lower::Exclusive(v) => write!(f, "({v}")?,
        }
        write!(f, ", ")?;
        match &self.hi {
            Upper::Unbounded => write!(f, "+inf)"),
            Upper::Inclusive(v) => write!(f, "{v}]"),
            Upper::Exclusive(v) => write!(f, "{v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_bad_intervals() {
        assert_eq!(
            Interval::new(Lower::Inclusive(5), Upper::Inclusive(3)),
            Err(IntervalError::Inverted)
        );
        assert_eq!(
            Interval::new(Lower::Exclusive(5), Upper::Inclusive(5)),
            Err(IntervalError::Empty)
        );
        assert_eq!(
            Interval::new(Lower::Inclusive(5), Upper::Exclusive(5)),
            Err(IntervalError::Empty)
        );
        assert!(Interval::new(Lower::Inclusive(5), Upper::Inclusive(5)).is_ok());
    }

    #[test]
    fn contains_respects_openness() {
        let i = Interval::closed_open(2, 7);
        assert!(!i.contains(&1));
        assert!(i.contains(&2));
        assert!(i.contains(&6));
        assert!(!i.contains(&7));

        let p = Interval::point(4);
        assert!(p.contains(&4));
        assert!(!p.contains(&3));
        assert!(p.is_point());
        assert!(!i.is_point());
    }

    #[test]
    fn contains_open_ended() {
        assert!(Interval::at_least(10).contains(&10));
        assert!(!Interval::greater_than(10).contains(&10));
        assert!(Interval::greater_than(10).contains(&11));
        assert!(Interval::at_most(10).contains(&10));
        assert!(!Interval::less_than(10).contains(&10));
        assert!(Interval::<i32>::unbounded().contains(&i32::MIN));
        assert!(Interval::<i32>::unbounded().contains(&i32::MAX));
    }

    #[test]
    fn covers_open_range_basics() {
        let i = Interval::closed(2, 10);
        // (2, 10) is covered by [2, 10].
        assert!(i.covers_open_range(Some(&2), Some(&10)));
        // (1, 10) is not: 1.5-like values below 2 escape.
        assert!(!i.covers_open_range(Some(&1), Some(&10)));
        // (3, 9) is.
        assert!(i.covers_open_range(Some(&3), Some(&9)));
        // Half-infinite ranges need open-ended intervals.
        assert!(!i.covers_open_range(Some(&2), None));
        assert!(Interval::at_least(2).covers_open_range(Some(&2), None));
        assert!(Interval::<i32>::unbounded().covers_open_range(None, None));
        // Open interval (2, 10) also covers open range (2, 10).
        assert!(Interval::open(2, 10).covers_open_range(Some(&2), Some(&10)));
    }

    #[test]
    fn overlaps_cases() {
        let a = Interval::closed(1, 5);
        assert!(a.overlaps(&Interval::closed(5, 9))); // touch at closed ends
        assert!(!a.overlaps(&Interval::open_closed(5, 9))); // (5,9] misses 5
        assert!(!Interval::closed_open(1, 5).overlaps(&Interval::closed(5, 9)));
        assert!(a.overlaps(&Interval::closed(0, 1)));
        assert!(!a.overlaps(&Interval::closed(6, 9)));
        assert!(a.overlaps(&Interval::<i32>::unbounded()));
        assert!(Interval::at_most(1).overlaps(&Interval::at_least(1)));
        assert!(!Interval::less_than(1).overlaps(&Interval::at_least(1)));
        assert!(a.overlaps(&Interval::point(3)));
        assert!(!a.overlaps(&Interval::point(6)));
    }

    #[test]
    fn intersection() {
        let a = Interval::greater_than(5);
        let b = Interval::at_most(10);
        assert_eq!(a.intersect(&b), Some(Interval::open_closed(5, 10)));
        assert_eq!(
            Interval::closed(1, 5).intersect(&Interval::closed(5, 9)),
            Some(Interval::point(5))
        );
        assert_eq!(
            Interval::closed(1, 4).intersect(&Interval::closed(5, 9)),
            None
        );
        assert_eq!(
            Interval::closed_open(1, 5).intersect(&Interval::closed(5, 9)),
            None
        );
        assert_eq!(
            Interval::<i32>::unbounded().intersect(&Interval::point(3)),
            Some(Interval::point(3))
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Interval::closed(1, 2).to_string(), "[1, 2]");
        assert_eq!(Interval::open(1, 2).to_string(), "(1, 2)");
        assert_eq!(Interval::at_least(3).to_string(), "[3, +inf)");
        assert_eq!(Interval::less_than(3).to_string(), "(-inf, 3)");
    }

    #[test]
    fn works_on_strings() {
        let i = Interval::closed("apple".to_string(), "mango".to_string());
        assert!(i.contains(&"banana".to_string()));
        assert!(!i.contains(&"zebra".to_string()));
    }
}
