//! Interval algebra shared by every index structure in this workspace.
//!
//! The paper (Hanson et al., SIGMOD 1990, §1) defines range predicate
//! clauses of the form `const1 ρ1 t.attribute ρ2 const2` where each ρ is
//! one of `<` or `≤`, equality clauses `t.attribute = const`, and open
//! intervals obtained by setting an endpoint to ±∞. This crate models
//! exactly that family: an [`Interval`] over any totally ordered domain,
//! with independently open, closed, or unbounded endpoints.
//!
//! No numeric assumptions are made — any `K: Ord + Clone` works, which is
//! the property the paper highlights for the IBS-tree over priority search
//! trees ("IBS-trees work without modification on any totally ordered
//! domain for which the comparison operators {<, =, >} are defined").

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

mod bound;
mod interval;

pub use bound::{Lower, Upper};
pub use interval::{Interval, IntervalError};

/// Identifier for an interval (in the paper's terms: a predicate id stored
/// in the mark slots of IBS-tree nodes). Plain `u32` newtype so mark sets
/// stay small and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntervalId(pub u32);

impl IntervalId {
    /// The raw index value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for IntervalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}
