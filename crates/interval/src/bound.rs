//! Endpoint (bound) types for intervals.
//!
//! Lower and upper bounds are distinct types so that the type system rules
//! out nonsense like an interval whose lower end is `+∞`, and so that each
//! side gets the ordering semantics appropriate to it:
//!
//! * two lower bounds at the same value compare `Inclusive < Exclusive`
//!   (the inclusive one admits more of the low end),
//! * two upper bounds at the same value compare `Exclusive < Inclusive`.
//!
//! These orderings make "interval A starts before interval B" and
//! "interval A ends after interval B" plain `Ord` comparisons, which the
//! treap / segment tree / interval tree comparators rely on.

use std::cmp::Ordering;

/// Lower endpoint of an interval.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Lower<K> {
    /// No lower bound (`-∞`): the paper's open-ended interval obtained by
    /// setting `const1 = -∞`.
    Unbounded,
    /// `value ≤ x`.
    Inclusive(K),
    /// `value < x`.
    Exclusive(K),
}

/// Upper endpoint of an interval.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Upper<K> {
    /// No upper bound (`+∞`).
    Unbounded,
    /// `x ≤ value`.
    Inclusive(K),
    /// `x < value`.
    Exclusive(K),
}

impl<K: Ord> Lower<K> {
    /// Does this lower bound admit `x`?
    #[inline]
    pub fn admits(&self, x: &K) -> bool {
        match self {
            Lower::Unbounded => true,
            Lower::Inclusive(v) => v <= x,
            Lower::Exclusive(v) => v < x,
        }
    }

    /// Does this lower bound admit *every* element of the open range
    /// `(fence, ·)`, i.e. every `x` with `x > fence`?
    ///
    /// With `fence = None` the range starts at `-∞`, so only an unbounded
    /// lower bound qualifies. This is the test the IBS-tree uses to decide
    /// whether everything in a subtree lies within an interval (the
    /// paper's `leftUp`/`rightUp` comparison, done against the descent
    /// fence instead of by walking ancestors).
    #[inline]
    pub fn admits_all_above(&self, fence: Option<&K>) -> bool {
        match (self, fence) {
            (Lower::Unbounded, _) => true,
            (_, None) => false,
            // Both Inclusive(v) and Exclusive(v) admit every x > v, so in
            // either case admitting all x > fence needs v <= fence.
            (Lower::Inclusive(v), Some(f)) | (Lower::Exclusive(v), Some(f)) => v <= f,
        }
    }

    /// The finite endpoint value, if any.
    #[inline]
    pub fn value(&self) -> Option<&K> {
        match self {
            Lower::Unbounded => None,
            Lower::Inclusive(v) | Lower::Exclusive(v) => Some(v),
        }
    }

    /// Is the bound inclusive (`≤`)?
    #[inline]
    pub fn is_inclusive(&self) -> bool {
        matches!(self, Lower::Inclusive(_))
    }
}

impl<K: Ord> Upper<K> {
    /// Does this upper bound admit `x`?
    #[inline]
    pub fn admits(&self, x: &K) -> bool {
        match self {
            Upper::Unbounded => true,
            Upper::Inclusive(v) => x <= v,
            Upper::Exclusive(v) => x < v,
        }
    }

    /// Does this upper bound admit every element of the open range
    /// `(·, fence)`, i.e. every `x` with `x < fence`? `fence = None`
    /// means the range extends to `+∞`.
    #[inline]
    pub fn admits_all_below(&self, fence: Option<&K>) -> bool {
        match (self, fence) {
            (Upper::Unbounded, _) => true,
            (_, None) => false,
            (Upper::Inclusive(v), Some(f)) | (Upper::Exclusive(v), Some(f)) => v >= f,
        }
    }

    /// The finite endpoint value, if any.
    #[inline]
    pub fn value(&self) -> Option<&K> {
        match self {
            Upper::Unbounded => None,
            Upper::Inclusive(v) | Upper::Exclusive(v) => Some(v),
        }
    }

    /// Is the bound inclusive (`≤`)?
    #[inline]
    pub fn is_inclusive(&self) -> bool {
        matches!(self, Upper::Inclusive(_))
    }
}

impl<K: Ord> PartialOrd for Lower<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for Lower<K> {
    /// Orders by "how far left the interval starts": `-∞` first, then by
    /// value, inclusive before exclusive at equal values.
    fn cmp(&self, other: &Self) -> Ordering {
        use Lower::*;
        match (self, other) {
            (Unbounded, Unbounded) => Ordering::Equal,
            (Unbounded, _) => Ordering::Less,
            (_, Unbounded) => Ordering::Greater,
            (Inclusive(a), Inclusive(b)) | (Exclusive(a), Exclusive(b)) => a.cmp(b),
            (Inclusive(a), Exclusive(b)) => a.cmp(b).then(Ordering::Less),
            (Exclusive(a), Inclusive(b)) => a.cmp(b).then(Ordering::Greater),
        }
    }
}

impl<K: Ord> PartialOrd for Upper<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for Upper<K> {
    /// Orders by "how far right the interval ends": by value with
    /// exclusive before inclusive, `+∞` last.
    fn cmp(&self, other: &Self) -> Ordering {
        use Upper::*;
        match (self, other) {
            (Unbounded, Unbounded) => Ordering::Equal,
            (Unbounded, _) => Ordering::Greater,
            (_, Unbounded) => Ordering::Less,
            (Inclusive(a), Inclusive(b)) | (Exclusive(a), Exclusive(b)) => a.cmp(b),
            (Inclusive(a), Exclusive(b)) => a.cmp(b).then(Ordering::Greater),
            (Exclusive(a), Inclusive(b)) => a.cmp(b).then(Ordering::Less),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_admits() {
        assert!(Lower::Unbounded.admits(&5));
        assert!(Lower::Inclusive(5).admits(&5));
        assert!(!Lower::Exclusive(5).admits(&5));
        assert!(Lower::Exclusive(5).admits(&6));
        assert!(!Lower::Inclusive(5).admits(&4));
    }

    #[test]
    fn upper_admits() {
        assert!(Upper::Unbounded.admits(&5));
        assert!(Upper::Inclusive(5).admits(&5));
        assert!(!Upper::Exclusive(5).admits(&5));
        assert!(Upper::Exclusive(5).admits(&4));
        assert!(!Upper::Inclusive(5).admits(&6));
    }

    #[test]
    fn lower_admits_all_above() {
        // Every x > 5 is admitted by bounds at <=5 of either openness.
        assert!(Lower::Inclusive(5).admits_all_above(Some(&5)));
        assert!(Lower::Exclusive(5).admits_all_above(Some(&5)));
        assert!(Lower::Inclusive(4).admits_all_above(Some(&5)));
        assert!(!Lower::Inclusive(6).admits_all_above(Some(&5)));
        // Only -inf admits all of (-inf, ...).
        assert!(Lower::<i32>::Unbounded.admits_all_above(None));
        assert!(!Lower::Inclusive(0).admits_all_above(None));
    }

    #[test]
    fn upper_admits_all_below() {
        assert!(Upper::Inclusive(5).admits_all_below(Some(&5)));
        assert!(Upper::Exclusive(5).admits_all_below(Some(&5)));
        assert!(Upper::Inclusive(6).admits_all_below(Some(&5)));
        assert!(!Upper::Inclusive(4).admits_all_below(Some(&5)));
        assert!(Upper::<i32>::Unbounded.admits_all_below(None));
        assert!(!Upper::Inclusive(100).admits_all_below(None));
    }

    #[test]
    fn lower_ordering() {
        let mut v = vec![
            Lower::Exclusive(3),
            Lower::Inclusive(3),
            Lower::Unbounded,
            Lower::Inclusive(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Lower::Unbounded,
                Lower::Inclusive(1),
                Lower::Inclusive(3),
                Lower::Exclusive(3),
            ]
        );
    }

    #[test]
    fn upper_ordering() {
        let mut v = vec![
            Upper::Inclusive(3),
            Upper::Exclusive(3),
            Upper::Unbounded,
            Upper::Inclusive(9),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Upper::Exclusive(3),
                Upper::Inclusive(3),
                Upper::Inclusive(9),
                Upper::Unbounded,
            ]
        );
    }
}
