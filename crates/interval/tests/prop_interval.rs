//! Property tests for the interval algebra — the axioms every index
//! structure in the workspace silently relies on.

use interval::{Interval, Lower, Upper};
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = Interval<i32>> {
    let key = -20i32..=20;
    prop_oneof![
        2 => key.clone().prop_map(Interval::point),
        4 => (key.clone(), key.clone(), any::<(bool, bool)>()).prop_filter_map(
            "non-empty",
            |(a, b, (li, hi))| {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                let lo = if li { Lower::Inclusive(a) } else { Lower::Exclusive(a) };
                let up = if hi { Upper::Inclusive(b) } else { Upper::Exclusive(b) };
                Interval::new(lo, up).ok()
            }
        ),
        1 => key.clone().prop_map(Interval::at_least),
        1 => key.clone().prop_map(Interval::greater_than),
        1 => key.clone().prop_map(Interval::at_most),
        1 => key.prop_map(Interval::less_than),
        1 => Just(Interval::unbounded()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `overlaps` is symmetric and agrees with a pointwise witness over
    /// the (dense-enough) integer domain: since all endpoints are
    /// integers, two intervals overlap iff some integer-or-half point is
    /// in both; checking integers and midpoints x+0.5 via the doubled
    /// domain 2x covers every case.
    #[test]
    fn overlaps_symmetric_and_pointwise(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        // Doubled-domain witness search: scale endpoints by 2 and test
        // every integer in the scaled domain, which includes all
        // original midpoints.
        let scale = |iv: &Interval<i32>| {
            let lo = match iv.lo() {
                Lower::Unbounded => Lower::Unbounded,
                Lower::Inclusive(v) => Lower::Inclusive(v * 2),
                Lower::Exclusive(v) => Lower::Exclusive(v * 2),
            };
            let hi = match iv.hi() {
                Upper::Unbounded => Upper::Unbounded,
                Upper::Inclusive(v) => Upper::Inclusive(v * 2),
                Upper::Exclusive(v) => Upper::Exclusive(v * 2),
            };
            Interval::new(lo, hi).expect("scaling preserves non-emptiness")
        };
        let (a2, b2) = (scale(&a), scale(&b));
        let witness = (-44..=44).any(|x| a2.contains(&x) && b2.contains(&x));
        prop_assert_eq!(a.overlaps(&b), witness, "a={} b={}", a, b);
    }

    /// `intersect` is the pointwise conjunction: x ∈ a∩b ⟺ x ∈ a ∧ x ∈ b,
    /// and `None` means no common point exists.
    #[test]
    fn intersect_is_pointwise_and(a in arb_interval(), b in arb_interval(), x in -25i32..=25) {
        match a.intersect(&b) {
            Some(i) => {
                prop_assert_eq!(i.contains(&x), a.contains(&x) && b.contains(&x));
            }
            None => {
                prop_assert!(!(a.contains(&x) && b.contains(&x)));
                prop_assert!(!a.overlaps(&b));
            }
        }
    }

    /// Intersection is commutative and idempotent.
    #[test]
    fn intersect_algebra(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.intersect(&a), Some(a.clone()));
    }

    /// `covers_open_range(lo, hi)` is equivalent to containing every
    /// point strictly between the fences (checked on the doubled domain
    /// so open/closed distinctions are visible).
    #[test]
    fn covers_open_range_pointwise(
        iv in arb_interval(),
        lo in prop::option::of(-20i32..=20),
        hi in prop::option::of(-20i32..=20),
    ) {
        prop_assume!(match (lo, hi) { (Some(a), Some(b)) => a < b, _ => true });
        let covers = iv.covers_open_range(lo.as_ref(), hi.as_ref());
        if covers {
            // Every integer strictly inside must be contained.
            for x in -21..=21 {
                let inside = lo.is_none_or(|a| x > a) && hi.is_none_or(|b| x < b);
                if inside {
                    prop_assert!(iv.contains(&x), "{} claimed to cover ({:?},{:?}) but misses {}", iv, lo, hi, x);
                }
            }
        } else {
            // Not covering an unbounded side with a bounded interval is
            // always sound; for bounded ranges there must be an escapee
            // in the doubled domain.
            if let (Some(a), Some(b)) = (lo, hi) {
                if a < b {
                    let escapee = ((2 * a + 1)..(2 * b)).any(|x2| {
                        // x2/2 in doubled domain: rebuild iv in doubled domain.
                        let lo2 = match iv.lo() {
                            Lower::Unbounded => Lower::Unbounded,
                            Lower::Inclusive(v) => Lower::Inclusive(v * 2),
                            Lower::Exclusive(v) => Lower::Exclusive(v * 2),
                        };
                        let hi2 = match iv.hi() {
                            Upper::Unbounded => Upper::Unbounded,
                            Upper::Inclusive(v) => Upper::Inclusive(v * 2),
                            Upper::Exclusive(v) => Upper::Exclusive(v * 2),
                        };
                        let iv2 = Interval::new(lo2, hi2).expect("non-empty");
                        !iv2.contains(&x2)
                    });
                    prop_assert!(
                        escapee,
                        "{} does not cover ({:?},{:?}) yet contains every point",
                        iv, lo, hi
                    );
                }
            }
        }
    }

    /// `overlaps_open_range` never under-reports (it may over-report in
    /// discrete domains, which only costs a vacuous descent).
    #[test]
    fn overlaps_open_range_is_superset_of_truth(
        iv in arb_interval(),
        lo in prop::option::of(-20i32..=20),
        hi in prop::option::of(-20i32..=20),
    ) {
        prop_assume!(match (lo, hi) { (Some(a), Some(b)) => a < b, _ => true });
        let claims = iv.overlaps_open_range(lo.as_ref(), hi.as_ref());
        let truth = (-21..=21).any(|x| {
            let inside = lo.is_none_or(|a| x > a) && hi.is_none_or(|b| x < b);
            inside && iv.contains(&x)
        });
        if truth {
            prop_assert!(claims, "{} overlaps ({:?},{:?}) but the test says no", iv, lo, hi);
        }
    }

    /// `is_point` ⟺ contains exactly one integer in a bounded domain.
    #[test]
    fn point_detection(iv in arb_interval()) {
        if iv.is_point() {
            let members = (-25..=25).filter(|x| iv.contains(x)).count();
            prop_assert_eq!(members, 1);
        }
    }
}
