//! The join-memo engine: every registered join condition's memo, plus
//! relation routing for retraction and the crate's metric families.

use crate::compile::CompiledJoin;
use crate::memo::{InsertOutcome, JoinMemo};
use relation::fx::FnvHashMap;
use relation::{Catalog, Tuple};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use telemetry::{Counter, Histogram, Registry};

use crate::memo::Binding;

/// Per-condition statistics, for `:memo`, stats surfaces, and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoStats {
    /// Engine-assigned condition key.
    pub key: u64,
    /// Premise relations, in premise order.
    pub relations: Vec<String>,
    /// Alpha-memory size per premise.
    pub alpha_counts: Vec<usize>,
    /// Token count per level; the last entry is complete matches.
    pub level_counts: Vec<usize>,
    /// Rough resident bytes.
    pub approx_bytes: u64,
}

struct Metrics {
    /// Candidate partial matches / tuples examined while extending.
    probes: Counter,
    /// Tokens removed by deletions.
    retractions: Counter,
    /// Live partial-match count, sampled after each memo mutation.
    partials: Histogram,
    /// Rough resident memo bytes, sampled after each memo mutation.
    bytes: Histogram,
}

impl Metrics {
    fn disabled() -> Metrics {
        Metrics {
            probes: Counter::disabled(),
            retractions: Counter::disabled(),
            partials: Histogram::disabled(),
            bytes: Histogram::disabled(),
        }
    }

    fn from_registry(registry: &Arc<Registry>) -> Metrics {
        Metrics {
            probes: registry.counter("join_probes_total"),
            retractions: registry.counter("join_retractions_total"),
            partials: registry.histogram("join_partial_matches"),
            bytes: registry.histogram("join_memo_bytes"),
        }
    }
}

/// All join memos of one rule engine.
pub struct JoinEngine {
    memos: FnvHashMap<u64, JoinMemo>,
    /// relation -> [(condition key, premise index)]
    by_relation: FnvHashMap<String, Vec<(u64, usize)>>,
    metrics: Metrics,
}

impl Default for JoinEngine {
    fn default() -> Self {
        JoinEngine::new()
    }
}

impl JoinEngine {
    /// An empty engine with disabled metrics.
    pub fn new() -> JoinEngine {
        JoinEngine {
            memos: FnvHashMap::default(),
            by_relation: FnvHashMap::default(),
            metrics: Metrics::disabled(),
        }
    }

    /// Mints this crate's metric families from `registry` (a disabled
    /// registry resets the handles to no-ops).
    pub fn attach_metrics(&mut self, registry: &Arc<Registry>) {
        self.metrics = if registry.is_enabled() {
            Metrics::from_registry(registry)
        } else {
            Metrics::disabled()
        };
    }

    /// True if no conditions are registered.
    pub fn is_empty(&self) -> bool {
        self.memos.is_empty()
    }

    /// Registers a compiled condition under the caller-chosen `key`
    /// (the rules engine uses a monotonic counter). The memo starts
    /// empty; use [`seed`](Self::seed) to fill it from existing tuples.
    pub fn register(&mut self, key: u64, compiled: CompiledJoin) {
        for i in 0..compiled.arity() {
            self.by_relation
                .entry(compiled.relation(i).to_string())
                .or_default()
                .push((key, i));
        }
        self.memos.insert(key, JoinMemo::new(compiled));
    }

    /// Removes a condition and its memo.
    pub fn unregister(&mut self, key: u64) {
        if let Some(memo) = self.memos.remove(&key) {
            for i in 0..memo.plan().arity() {
                if let Some(v) = self.by_relation.get_mut(memo.plan().relation(i)) {
                    v.retain(|&(k, _)| k != key);
                    if v.is_empty() {
                        self.by_relation.remove(memo.plan().relation(i));
                    }
                }
            }
        }
    }

    /// Condition keys that have a premise over `relation`, with the
    /// premise index, sorted by key.
    pub fn premises_over(&self, relation: &str) -> Vec<(u64, usize)> {
        let mut v = self.by_relation.get(relation).cloned().unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Feeds an alpha-matching tuple into premise `premise` of
    /// condition `key`. Returns the completed matches (sorted by
    /// tuple-id vector) plus probe/creation counts.
    pub fn insert(&mut self, key: u64, premise: usize, tid: u32, tuple: &Tuple) -> InsertOutcome {
        let Some(memo) = self.memos.get_mut(&key) else {
            return InsertOutcome::default();
        };
        let out = memo.insert(premise, tid, tuple);
        self.metrics.probes.add(out.probes);
        self.metrics.partials.record(memo.partial_count() as u64);
        self.metrics.bytes.record(memo.approx_bytes());
        out
    }

    /// Retracts tuple `tid` of `relation` from every memo with a
    /// premise over it. Returns the number of tokens retracted.
    pub fn retract(&mut self, relation: &str, tid: u32) -> u64 {
        self.retract_counted(relation, tid)
            .iter()
            .map(|&(_, n)| n)
            .sum()
    }

    /// [`retract`](Self::retract), reporting the per-condition split:
    /// `(condition key, tokens retracted)` for every key that lost at
    /// least one token (several premises of one condition over the
    /// same relation merge into one entry). The cost-attribution layer
    /// uses this to bill each retraction to the rule owning the
    /// condition.
    pub fn retract_counted(&mut self, relation: &str, tid: u32) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        let mut total = 0;
        for (key, premise) in self.premises_over(relation) {
            if let Some(memo) = self.memos.get_mut(&key) {
                let n = memo.retract(premise, tid);
                total += n;
                if n > 0 {
                    match out.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, c)) => *c += n,
                        None => out.push((key, n)),
                    }
                }
                self.metrics.partials.record(memo.partial_count() as u64);
                self.metrics.bytes.record(memo.approx_bytes());
            }
        }
        self.metrics.retractions.add(total);
        out
    }

    /// Seeds condition `key` from every existing tuple of `catalog`
    /// that passes its premises' alpha tests, premise by premise in
    /// ascending tuple-id order. Returns each complete match exactly
    /// once, in the (deterministic) order seeding discovered it.
    pub fn seed(&mut self, key: u64, catalog: &Catalog) -> Vec<Binding> {
        let Some(memo) = self.memos.get(&key) else {
            return Vec::new();
        };
        let arity = memo.plan().arity();
        let mut completions = Vec::new();
        for i in 0..arity {
            // Collect first: the scan borrows the memo immutably.
            let matching: Vec<(u32, Tuple)> = {
                let memo = &self.memos[&key];
                let rel_name = memo.plan().relation(i);
                match catalog.relation(rel_name) {
                    Some(rel) => memo
                        .plan()
                        .alpha(i)
                        .scan(rel)
                        .map(|(tid, t)| (tid.0, t.clone()))
                        .collect(),
                    None => Vec::new(),
                }
            };
            for (tid, tuple) in matching {
                let out = self.insert(key, i, tid, &tuple);
                completions.extend(out.bindings);
            }
        }
        completions
    }

    /// Rebuilds every memo from scratch against the current database:
    /// discard all alpha entries and tokens, then re-seed each
    /// condition from `catalog`. Restores the memo invariant (tokens =
    /// all valid premise prefixes over current tuples) after a caller
    /// mutated the database without driving the corresponding events
    /// through [`insert`](Self::insert)/[`retract`](Self::retract) —
    /// the rules engine uses this when a cascade aborts midway.
    pub fn reseed_all(&mut self, catalog: &Catalog) {
        let keys: Vec<u64> = {
            let mut k: Vec<u64> = self.memos.keys().copied().collect();
            k.sort_unstable();
            k
        };
        for key in keys {
            if let Some(memo) = self.memos.get_mut(&key) {
                memo.reset();
            }
            self.seed(key, catalog);
        }
    }

    /// Statistics for every registered condition, sorted by key.
    pub fn stats(&self) -> Vec<MemoStats> {
        let mut out: Vec<MemoStats> = self
            .memos
            .iter()
            .map(|(&key, memo)| MemoStats {
                key,
                relations: (0..memo.plan().arity())
                    .map(|i| memo.plan().relation(i).to_string())
                    .collect(),
                alpha_counts: memo.alpha_counts(),
                level_counts: memo.level_counts().to_vec(),
                approx_bytes: memo.approx_bytes(),
            })
            .collect();
        out.sort_by_key(|s| s.key);
        out
    }

    /// Statistics for one condition.
    pub fn stats_for(&self, key: u64) -> Option<MemoStats> {
        self.stats().into_iter().find(|s| s.key == key)
    }

    /// Complete matches of condition `key` as sorted tuple-id vectors.
    pub fn complete_matches(&self, key: u64) -> Vec<Vec<u32>> {
        self.memos
            .get(&key)
            .map(|m| m.complete_matches())
            .unwrap_or_default()
    }

    /// Total live partial (non-complete) matches across all memos.
    pub fn total_partials(&self) -> usize {
        self.memos.values().map(|m| m.partial_count()).sum()
    }

    /// Order-independent digest of every memo's state. Keys do not
    /// enter the digest (they are engine-internal and differ across
    /// restores); each memo contributes its condition source plus its
    /// state hash, summed, so identical rule sets over identical
    /// databases digest identically no matter how they were built.
    pub fn fingerprint(&self) -> u64 {
        let mut acc: u64 = 0x243f_6a88_85a3_08d3;
        for memo in self.memos.values() {
            let mut h = relation::fx::FnvHasher::default();
            memo.plan()
                .condition()
                .to_source()
                .unwrap_or_default()
                .hash(&mut h);
            acc = acc.wrapping_add(h.finish() ^ memo.fingerprint());
        }
        acc
    }
}
