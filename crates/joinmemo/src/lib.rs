//! # Incremental join engine with Rete-style partial-match memoization
//!
//! Extends the paper's single-relation predicate matcher to
//! multi-premise rule conditions (`emp.dno = dept.dno and
//! dept.floor = 1`). The architecture follows the classic Rete split:
//!
//! - **alpha layer** — each premise is an ordinary single-relation
//!   [`predicate::Predicate`], registered in the paper's Figure-1 index
//!   by the rules engine, so per-relation selection still resolves
//!   through the interval-skip-list machinery;
//! - **beta layer** — this crate. Partial matches (*tokens*) over
//!   premise prefixes are memoized in hash stores keyed by the join
//!   values of the next premise's equality tests; ordering tests
//!   (interval joins) filter candidates during extension. Inserted
//!   tuples extend partial matches left and right, deleted tuples
//!   retract every token they participate in, and newly complete
//!   matches surface as [`Binding`]s for the rules engine to fire.
//!
//! The memo's token set is always exactly the set of valid premise
//! prefixes over the currently known tuples, so reseeding from a
//! database snapshot reproduces an incremental run's state bit for bit
//! — [`JoinEngine::fingerprint`] makes that checkable, and the durable
//! layer uses it to verify crash recovery.
//!
//! [`naive::full_matches`] is the deliberately stateless reference
//! evaluator used by the differential test suite and the
//! `ablation_join` benchmark.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

mod compile;
mod engine;
mod memo;
pub mod naive;

pub use compile::{CompileError, CompiledJoin};
pub use engine::{JoinEngine, MemoStats};
pub use memo::{Binding, InsertOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use predicate::{parse_condition, FunctionRegistry};
    use relation::{AttrType, Catalog, Schema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("dno", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        c.create_relation(
            Schema::builder("dept")
                .attr("dno", AttrType::Int)
                .attr("floor", AttrType::Int)
                .build(),
        )
        .unwrap();
        c
    }

    fn compile(src: &str, cat: &Catalog) -> CompiledJoin {
        let cond = parse_condition(src, &FunctionRegistry::default()).unwrap();
        CompiledJoin::compile(cond.as_join().unwrap(), cat).unwrap()
    }

    fn emp(name: &str, dno: i64, salary: i64) -> Vec<Value> {
        vec![Value::str(name), Value::Int(dno), Value::Int(salary)]
    }

    fn dept(dno: i64, floor: i64) -> Vec<Value> {
        vec![Value::Int(dno), Value::Int(floor)]
    }

    #[test]
    fn insert_completes_matches_in_either_arrival_order() {
        let mut cat = catalog();
        let plan = compile("emp.dno = dept.dno and dept.floor = 1", &cat);
        // Premise order is sorted: 0 = dept, 1 = emp.
        let mut je = JoinEngine::new();
        je.register(7, plan);

        let d = cat
            .relation_mut("dept")
            .unwrap()
            .insert(dept(4, 1))
            .unwrap();
        let dt = cat.relation("dept").unwrap().get(d).unwrap().clone();
        let out = je.insert(7, 0, d.0, &dt);
        assert!(out.bindings.is_empty()); // partial only

        let e = cat
            .relation_mut("emp")
            .unwrap()
            .insert(emp("al", 4, 100))
            .unwrap();
        let et = cat.relation("emp").unwrap().get(e).unwrap().clone();
        let out = je.insert(7, 1, e.0, &et);
        assert_eq!(out.bindings.len(), 1);
        let b = &out.bindings[0];
        assert_eq!(b.tuples[0].0, "dept");
        assert_eq!(b.tuples[1].0, "emp");
        assert_eq!(b.tuple_ids(), vec![d.0, e.0]);

        // Non-joining tuple completes nothing.
        let e2 = cat
            .relation_mut("emp")
            .unwrap()
            .insert(emp("bo", 9, 100))
            .unwrap();
        let et2 = cat.relation("emp").unwrap().get(e2).unwrap().clone();
        assert!(je.insert(7, 1, e2.0, &et2).bindings.is_empty());
        assert_eq!(je.complete_matches(7), vec![vec![d.0, e.0]]);
    }

    #[test]
    fn retraction_removes_dependent_tokens() {
        let mut cat = catalog();
        let plan = compile("emp.dno = dept.dno", &cat);
        let mut je = JoinEngine::new();
        je.register(1, plan);

        let d = cat
            .relation_mut("dept")
            .unwrap()
            .insert(dept(4, 1))
            .unwrap();
        let dt = cat.relation("dept").unwrap().get(d).unwrap().clone();
        je.insert(1, 0, d.0, &dt);
        for i in 0..3 {
            let e = cat
                .relation_mut("emp")
                .unwrap()
                .insert(emp("x", 4, i))
                .unwrap();
            let et = cat.relation("emp").unwrap().get(e).unwrap().clone();
            je.insert(1, 1, e.0, &et);
        }
        assert_eq!(je.complete_matches(1).len(), 3);
        // Deleting the dept tuple retracts its level-0 token and all 3
        // complete matches.
        assert_eq!(je.retract("dept", d.0), 4);
        assert!(je.complete_matches(1).is_empty());
        assert_eq!(je.total_partials(), 0);
    }

    #[test]
    fn seed_equals_incremental_and_fingerprints_agree() {
        let mut cat = catalog();
        for (dno, floor) in [(1, 1), (2, 2), (3, 1)] {
            cat.relation_mut("dept")
                .unwrap()
                .insert(dept(dno, floor))
                .unwrap();
        }
        for (i, dno) in [1, 1, 2, 3, 9].iter().enumerate() {
            cat.relation_mut("emp")
                .unwrap()
                .insert(emp("e", *dno, i as i64))
                .unwrap();
        }
        let src = "emp.dno = dept.dno and dept.floor = 1";

        // Incremental: feed every alpha-matching tuple through
        // insert() (at runtime the predicate index applies the alpha
        // test before the memo sees the tuple).
        let plan = compile(src, &cat);
        let mut inc = JoinEngine::new();
        inc.register(0, plan.clone());
        for premise in [0usize, 1] {
            let tuples: Vec<_> = cat
                .relation(plan.relation(premise))
                .unwrap()
                .iter()
                .filter(|(_, t)| plan.alpha(premise).matches(t))
                .map(|(tid, t)| (tid.0, t.clone()))
                .collect();
            for (tid, t) in tuples {
                inc.insert(0, premise, tid, &t);
            }
        }

        // Seeded: one shot from the catalog.
        let mut seeded = JoinEngine::new();
        seeded.register(42, compile(src, &cat));
        let completions = seeded.seed(42, &cat);

        assert_eq!(inc.complete_matches(0), seeded.complete_matches(42));
        assert_eq!(inc.fingerprint(), seeded.fingerprint());
        assert_eq!(completions.len(), inc.complete_matches(0).len());

        // And both agree with the naive evaluator.
        let naive = naive::full_matches(&compile(src, &cat), &cat);
        assert_eq!(inc.complete_matches(0), naive);
    }

    #[test]
    fn interval_join_residual_filters() {
        let mut cat = catalog();
        cat.create_relation(
            Schema::builder("mgr")
                .attr("dno", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        // emp joins mgr on dno, and emp must earn strictly less.
        let src = "emp.dno = mgr.dno and emp.salary < mgr.salary";
        cat.relation_mut("emp")
            .unwrap()
            .insert(emp("lo", 1, 50))
            .unwrap();
        cat.relation_mut("emp")
            .unwrap()
            .insert(emp("hi", 1, 500))
            .unwrap();
        cat.relation_mut("mgr")
            .unwrap()
            .insert(vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        let plan = compile(src, &cat);
        let mut je = JoinEngine::new();
        je.register(0, plan.clone());
        je.seed(0, &cat);
        let got = je.complete_matches(0);
        assert_eq!(got, naive::full_matches(&plan, &cat));
        assert_eq!(got.len(), 1); // only the 50 < 100 pair
    }

    #[test]
    fn type_mismatch_rejected_at_compile() {
        let cat = catalog();
        let cond = parse_condition("emp.name = dept.dno", &FunctionRegistry::default()).unwrap();
        let err = CompiledJoin::compile(cond.as_join().unwrap(), &cat).unwrap_err();
        assert!(matches!(err, CompileError::TypeMismatch { .. }));
    }

    #[test]
    fn delete_then_reinsert_rebuilds_cleanly() {
        let mut cat = catalog();
        let plan = compile("emp.dno = dept.dno", &cat);
        let mut je = JoinEngine::new();
        je.register(0, plan);
        let d = cat
            .relation_mut("dept")
            .unwrap()
            .insert(dept(4, 1))
            .unwrap();
        let dt = cat.relation("dept").unwrap().get(d).unwrap().clone();
        let e = cat
            .relation_mut("emp")
            .unwrap()
            .insert(emp("al", 4, 1))
            .unwrap();
        let et = cat.relation("emp").unwrap().get(e).unwrap().clone();
        je.insert(0, 0, d.0, &dt);
        assert_eq!(je.insert(0, 1, e.0, &et).bindings.len(), 1);
        je.retract("emp", e.0);
        assert!(je.complete_matches(0).is_empty());
        // Reinsert: exactly one new completion, not two.
        assert_eq!(je.insert(0, 1, e.0, &et).bindings.len(), 1);
        assert_eq!(je.complete_matches(0).len(), 1);
    }
}
