//! Naive from-scratch join evaluation — the reference the memo is
//! differentially tested (and benchmarked) against.
//!
//! [`full_matches`] recomputes the complete match set of a compiled
//! condition directly from the catalog on every call: filter each
//! premise's relation through its alpha test, then extend partial
//! matches premise by premise using freshly built hash tables for the
//! equality steps and residual filters for the ordering steps. No
//! state is carried between calls — this is exactly the work the memo
//! amortizes.

use crate::compile::CompiledJoin;
use relation::fx::FnvHashMap;
use relation::{Catalog, Tuple, Value};

/// All complete matches of `compiled` against the current catalog
/// state, as sorted tuple-id vectors (premise order).
pub fn full_matches(compiled: &CompiledJoin, catalog: &Catalog) -> Vec<Vec<u32>> {
    let n = compiled.arity();
    // Alpha-filtered tuples per premise.
    let mut alphas: Vec<Vec<(u32, &Tuple)>> = Vec::with_capacity(n);
    for i in 0..n {
        let tuples = match catalog.relation(compiled.relation(i)) {
            Some(rel) => compiled
                .alpha(i)
                .scan(rel)
                .map(|(tid, t)| (tid.0, t))
                .collect(),
            None => Vec::new(),
        };
        alphas.push(tuples);
    }

    let maps: Vec<FnvHashMap<u32, &Tuple>> = alphas
        .iter()
        .map(|a| a.iter().map(|&(tid, t)| (tid, t)).collect())
        .collect();
    let mut partials: Vec<Vec<u32>> = alphas[0].iter().map(|&(tid, _)| vec![tid]).collect();
    let tuple_of = |premise: usize, tid: u32| -> &Tuple { maps[premise][&tid] };
    for (j, alpha) in alphas.iter().enumerate().skip(1) {
        let plan = compiled.plan(j);
        // Hash premise j by its equality-step values.
        let mut by_key: FnvHashMap<Vec<Value>, Vec<(u32, &Tuple)>> = FnvHashMap::default();
        for &(tid, t) in alpha {
            let key: Vec<Value> = plan
                .eq
                .iter()
                .map(|s| t.get(s.right_attr).clone())
                .collect();
            by_key.entry(key).or_default().push((tid, t));
        }
        let mut next = Vec::new();
        for tids in &partials {
            let key: Vec<Value> = plan
                .eq
                .iter()
                .map(|s| {
                    tuple_of(s.left_premise, tids[s.left_premise])
                        .get(s.left_attr)
                        .clone()
                })
                .collect();
            if let Some(cands) = by_key.get(&key) {
                for &(tid, t) in cands {
                    let ok = plan.residual.iter().all(|s| {
                        let left = tuple_of(s.left_premise, tids[s.left_premise]).get(s.left_attr);
                        s.op.holds(left, t.get(s.right_attr))
                    });
                    if ok {
                        let mut ext = tids.clone();
                        ext.push(tid);
                        next.push(ext);
                    }
                }
            }
        }
        partials = next;
    }
    partials.sort();
    partials
}
