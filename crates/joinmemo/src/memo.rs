//! Beta-node partial-match stores for one compiled join.
//!
//! A *token* is a partial match: tuple ids for premises `0..=k` (its
//! *level* is `k`). The memo maintains the invariant that the token set
//! equals **every** valid prefix over the currently known alpha tuples:
//! seeding a fresh memo from the same database state therefore
//! reproduces the exact token set an incremental run arrived at, which
//! is what makes the [`fingerprint`](JoinMemo::fingerprint) comparable
//! across crash/recovery boundaries.
//!
//! Stores are hash-keyed by join values (the equality steps of the
//! premise being extended); ordering steps filter candidates as they
//! are probed. Insertion at premise `k` extends *left* (probing the
//! level `k-1` store for prefixes that accept the new tuple) and then
//! *right* (probing the alpha stores of premises `k+1..` to grow the
//! newly created tokens as far as the known tuples allow). Deletion
//! retracts the alpha entry and every token that contains the tuple.

use crate::compile::CompiledJoin;
use relation::fx::FnvHashMap;
use relation::{Tuple, TupleId, Value};
use std::hash::{Hash, Hasher};

/// One complete match: the bound tuple of every premise, in premise
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// `(relation, tuple id, tuple)` per premise.
    pub tuples: Vec<(String, TupleId, Tuple)>,
}

impl Binding {
    /// The premise tuple ids, in premise order.
    pub fn tuple_ids(&self) -> Vec<u32> {
        self.tuples.iter().map(|(_, id, _)| id.0).collect()
    }
}

/// Effect of one insertion, for metrics and EXPLAIN narration.
#[derive(Debug, Clone, Default)]
pub struct InsertOutcome {
    /// Complete matches created by this insertion, sorted by tuple-id
    /// vector.
    pub bindings: Vec<Binding>,
    /// Candidate partial matches / tuples examined.
    pub probes: u64,
    /// Tokens created (all levels, including complete ones).
    pub created: u64,
}

#[derive(Debug, Clone)]
struct Token {
    tids: Vec<u32>,
}

/// The memo for one compiled join condition.
#[derive(Debug)]
pub(crate) struct JoinMemo {
    plan: CompiledJoin,
    /// Per premise: tuple id -> tuple (the alpha memory).
    alpha: Vec<FnvHashMap<u32, Tuple>>,
    /// Per premise: equality-key -> tuple ids (for rightward probes).
    alpha_key: Vec<FnvHashMap<Vec<Value>, Vec<u32>>>,
    /// All live tokens by id.
    tokens: FnvHashMap<u64, Token>,
    next_token: u64,
    /// Per level `0..n-1`: equality-key -> token ids, keyed for
    /// extension into premise `level + 1` (the beta stores).
    level_key: Vec<FnvHashMap<Vec<Value>, Vec<u64>>>,
    /// `(premise, tuple id)` -> tokens containing that tuple, for
    /// retraction.
    by_tuple: FnvHashMap<(u32, u32), Vec<u64>>,
    /// Token count per level.
    level_counts: Vec<usize>,
    /// Rough resident size, maintained incrementally.
    approx_bytes: u64,
}

fn value_bytes(v: &Value) -> u64 {
    match v {
        Value::Str(s) => 24 + s.len() as u64,
        _ => 16,
    }
}

fn tuple_bytes(t: &Tuple) -> u64 {
    24 + t.values().iter().map(value_bytes).sum::<u64>()
}

impl JoinMemo {
    pub(crate) fn new(plan: CompiledJoin) -> JoinMemo {
        let n = plan.arity();
        JoinMemo {
            plan,
            alpha: vec![FnvHashMap::default(); n],
            alpha_key: vec![FnvHashMap::default(); n],
            tokens: FnvHashMap::default(),
            next_token: 0,
            level_key: vec![FnvHashMap::default(); n.saturating_sub(1)],
            by_tuple: FnvHashMap::default(),
            level_counts: vec![0; n],
            approx_bytes: 0,
        }
    }

    pub(crate) fn plan(&self) -> &CompiledJoin {
        &self.plan
    }

    /// Discards every alpha entry and token, keeping the plan — the
    /// first step of a from-scratch reseed.
    pub(crate) fn reset(&mut self) {
        *self = JoinMemo::new(self.plan.clone());
    }

    /// Token count per level (`counts[k]` = partial matches over
    /// premises `0..=k`; the last entry counts complete matches).
    pub(crate) fn level_counts(&self) -> &[usize] {
        &self.level_counts
    }

    /// Alpha-memory size per premise.
    pub(crate) fn alpha_counts(&self) -> Vec<usize> {
        self.alpha.iter().map(|m| m.len()).collect()
    }

    /// Partial (non-complete) token count.
    pub(crate) fn partial_count(&self) -> usize {
        let n = self.level_counts.len();
        self.level_counts[..n - 1].iter().sum()
    }

    pub(crate) fn approx_bytes(&self) -> u64 {
        self.approx_bytes
    }

    /// Equality-key of a premise-`j` tuple when probed from the left.
    fn alpha_key_of(&self, j: usize, tuple: &Tuple) -> Vec<Value> {
        self.plan
            .plan(j)
            .eq
            .iter()
            .map(|s| tuple.get(s.right_attr).clone())
            .collect()
    }

    /// Equality-key a partial match over `0..j` presents to premise `j`.
    fn probe_key_of(&self, j: usize, tids: &[u32]) -> Vec<Value> {
        self.plan
            .plan(j)
            .eq
            .iter()
            .map(|s| {
                self.alpha[s.left_premise][&tids[s.left_premise]]
                    .get(s.left_attr)
                    .clone()
            })
            .collect()
    }

    /// Ordering steps of premise `j` against candidate `tuple`.
    fn residual_ok(&self, j: usize, tids: &[u32], tuple: &Tuple) -> bool {
        self.plan.plan(j).residual.iter().all(|s| {
            let left = self.alpha[s.left_premise][&tids[s.left_premise]].get(s.left_attr);
            s.op.holds(left, tuple.get(s.right_attr))
        })
    }

    fn store_token(&mut self, tids: Vec<u32>) -> Option<Binding> {
        let n = self.plan.arity();
        let level = tids.len() - 1;
        let id = self.next_token;
        self.next_token += 1;
        self.approx_bytes += 48 + 4 * tids.len() as u64;
        if level + 1 < n {
            let key = self.probe_key_of(level + 1, &tids);
            self.level_key[level].entry(key).or_default().push(id);
        }
        for (p, &t) in tids.iter().enumerate() {
            self.by_tuple.entry((p as u32, t)).or_default().push(id);
        }
        self.level_counts[level] += 1;
        let complete = level + 1 == n;
        let binding = complete.then(|| self.binding_of(&tids));
        self.tokens.insert(id, Token { tids });
        binding
    }

    fn binding_of(&self, tids: &[u32]) -> Binding {
        Binding {
            tuples: tids
                .iter()
                .enumerate()
                .map(|(p, &t)| {
                    (
                        self.plan.relation(p).to_string(),
                        TupleId(t),
                        self.alpha[p][&t].clone(),
                    )
                })
                .collect(),
        }
    }

    /// Feeds one alpha-matching tuple of premise `k` into the memo.
    /// The caller is responsible for the alpha test (at runtime the
    /// predicate index performs it; seeding uses
    /// [`CompiledJoin::alpha`]).
    pub(crate) fn insert(&mut self, k: usize, tid: u32, tuple: &Tuple) -> InsertOutcome {
        let n = self.plan.arity();
        let mut out = InsertOutcome::default();
        if self.alpha[k].contains_key(&tid) {
            return out; // duplicate feed (e.g. two premise pids) — ignore
        }
        self.alpha[k].insert(tid, tuple.clone());
        self.approx_bytes += 16 + tuple_bytes(tuple);
        let akey = self.alpha_key_of(k, tuple);
        self.alpha_key[k].entry(akey).or_default().push(tid);

        // Leftward: prefixes over 0..k that accept the new tuple.
        let mut frontier: Vec<Vec<u32>> = Vec::new();
        if k == 0 {
            frontier.push(vec![tid]);
        } else {
            let key = self.alpha_key_of(k, tuple);
            if let Some(cands) = self.level_key[k - 1].get(&key) {
                out.probes += cands.len() as u64;
                for &cid in cands {
                    let tids = &self.tokens[&cid].tids;
                    if self.residual_ok(k, tids, tuple) {
                        let mut ext = tids.clone();
                        ext.push(tid);
                        frontier.push(ext);
                    }
                }
            }
        }

        // Rightward: grow the new prefixes across premises k+1..n.
        let mut created = frontier;
        for j in k + 1..n {
            let mut next = Vec::new();
            for tids in &created {
                let key = self.probe_key_of(j, tids);
                if let Some(cands) = self.alpha_key[j].get(&key) {
                    out.probes += cands.len() as u64;
                    for &cand in cands {
                        let cand_tuple = &self.alpha[j][&cand];
                        if self.residual_ok(j, tids, cand_tuple) {
                            let mut ext = tids.clone();
                            ext.push(cand);
                            next.push(ext);
                        }
                    }
                }
            }
            // Store this level's tokens before moving right.
            for tids in created {
                out.created += 1;
                if let Some(b) = self.store_token(tids) {
                    out.bindings.push(b);
                }
            }
            created = next;
        }
        for tids in created {
            out.created += 1;
            if let Some(b) = self.store_token(tids) {
                out.bindings.push(b);
            }
        }
        out.bindings.sort_by_key(|b| b.tuple_ids());
        out
    }

    /// Retracts a tuple of premise `k`: removes its alpha entry and
    /// every token containing it. Returns the number of tokens
    /// retracted.
    pub(crate) fn retract(&mut self, k: usize, tid: u32) -> u64 {
        let n = self.plan.arity();
        let Some(victims) = self.by_tuple.remove(&(k as u32, tid)) else {
            // Tuple may still be in alpha with no tokens (n>=1 always
            // tokenizes prefixes through premise 0, so premise 0 tuples
            // always have tokens; later premises may not).
            self.drop_alpha(k, tid);
            return 0;
        };
        let mut retracted = 0;
        for id in victims {
            let Some(tok) = self.tokens.remove(&id) else {
                continue;
            };
            retracted += 1;
            let level = tok.tids.len() - 1;
            self.level_counts[level] -= 1;
            self.approx_bytes = self
                .approx_bytes
                .saturating_sub(48 + 4 * tok.tids.len() as u64);
            if level + 1 < n {
                let key = self.probe_key_of(level + 1, &tok.tids);
                if let Some(bucket) = self.level_key[level].get_mut(&key) {
                    bucket.retain(|&x| x != id);
                    if bucket.is_empty() {
                        self.level_key[level].remove(&key);
                    }
                }
            }
            for (p, &t) in tok.tids.iter().enumerate() {
                if (p as u32, t) == (k as u32, tid) {
                    continue;
                }
                if let Some(bucket) = self.by_tuple.get_mut(&(p as u32, t)) {
                    bucket.retain(|&x| x != id);
                    if bucket.is_empty() {
                        self.by_tuple.remove(&(p as u32, t));
                    }
                }
            }
        }
        self.drop_alpha(k, tid);
        retracted
    }

    fn drop_alpha(&mut self, k: usize, tid: u32) {
        if let Some(tuple) = self.alpha[k].remove(&tid) {
            self.approx_bytes = self.approx_bytes.saturating_sub(16 + tuple_bytes(&tuple));
            let key = self.alpha_key_of(k, &tuple);
            if let Some(bucket) = self.alpha_key[k].get_mut(&key) {
                bucket.retain(|&x| x != tid);
                if bucket.is_empty() {
                    self.alpha_key[k].remove(&key);
                }
            }
        }
    }

    /// All complete matches as tuple-id vectors, sorted.
    pub(crate) fn complete_matches(&self) -> Vec<Vec<u32>> {
        let n = self.plan.arity();
        let mut out: Vec<Vec<u32>> = self
            .tokens
            .values()
            .filter(|t| t.tids.len() == n)
            .map(|t| t.tids.clone())
            .collect();
        out.sort();
        out
    }

    /// Order-independent digest of the memo state (alpha memories and
    /// the full token set, token ids excluded). Two memos over the same
    /// condition hold identical state iff their fingerprints match —
    /// the sum over per-item hashes is insensitive to insertion order.
    pub(crate) fn fingerprint(&self) -> u64 {
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
        for (p, m) in self.alpha.iter().enumerate() {
            for (tid, tuple) in m {
                let mut h = relation::fx::FnvHasher::default();
                0u8.hash(&mut h);
                p.hash(&mut h);
                tid.hash(&mut h);
                tuple.values().hash(&mut h);
                acc = acc.wrapping_add(mix(h.finish()));
            }
        }
        for tok in self.tokens.values() {
            let mut h = relation::fx::FnvHasher::default();
            1u8.hash(&mut h);
            tok.tids.hash(&mut h);
            acc = acc.wrapping_add(mix(h.finish()));
        }
        acc
    }
}

/// Final avalanche (SplitMix64 tail) so the wrapping sum mixes well.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
