//! Premise-chain compilation: a [`JoinCondition`] bound against a
//! catalog.
//!
//! Compilation resolves every premise to a [`BoundPredicate`] (the
//! alpha-layer test, used for seeding and the naive evaluator — at
//! runtime the predicate index performs this test) and lowers every
//! cross-relation [`JoinTest`] into a *step* attached to its right
//! premise: the canonical form has `left < right`, so each premise
//! `j > 0` owns the tests that connect it to earlier premises.
//! Equality steps become the hash keys of the beta stores; ordering
//! steps (`<`, `<=`, `>`, `>=` — the interval joins) are residual
//! filters applied while extending a partial match.

use predicate::{BindError, BoundPredicate, JoinCondition, JoinOp};
use relation::{AttrType, Catalog};
use std::fmt;

/// Compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A premise references a relation the catalog does not have.
    NoSuchRelation(String),
    /// A premise failed to bind (bad attribute, type mismatch).
    Bind { relation: String, error: BindError },
    /// A join test references an attribute missing from its relation.
    NoSuchAttribute { relation: String, attr: String },
    /// The two sides of a join test have different attribute types.
    TypeMismatch { left: String, right: String },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoSuchRelation(r) => write!(f, "no relation named {r:?}"),
            CompileError::Bind { relation, error } => {
                write!(f, "premise over {relation:?}: {error}")
            }
            CompileError::NoSuchAttribute { relation, attr } => {
                write!(
                    f,
                    "join test references missing attribute {relation}.{attr}"
                )
            }
            CompileError::TypeMismatch { left, right } => {
                write!(
                    f,
                    "join test compares {left} with {right} (different types)"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// An equality step into premise `right`: partial-match side value
/// `tuples[left_premise][left_attr]` must equal candidate value
/// `tuple[right_attr]`.
#[derive(Debug, Clone)]
pub(crate) struct EqStep {
    pub(crate) left_premise: usize,
    pub(crate) left_attr: usize,
    pub(crate) right_attr: usize,
}

/// A non-equality (interval join) step into premise `right`, applied as
/// a residual filter.
#[derive(Debug, Clone)]
pub(crate) struct ResidualStep {
    pub(crate) left_premise: usize,
    pub(crate) left_attr: usize,
    pub(crate) op: JoinOp,
    pub(crate) right_attr: usize,
}

/// Steps owned by one premise: everything needed to extend a partial
/// match over premises `0..j` with a tuple of premise `j`.
#[derive(Debug, Clone, Default)]
pub(crate) struct PremisePlan {
    pub(crate) eq: Vec<EqStep>,
    pub(crate) residual: Vec<ResidualStep>,
}

/// A join condition compiled against a catalog: bound premises plus
/// per-premise extension plans.
#[derive(Debug, Clone)]
pub struct CompiledJoin {
    cond: JoinCondition,
    alphas: Vec<BoundPredicate>,
    plans: Vec<PremisePlan>,
}

impl CompiledJoin {
    /// Binds `cond` against `catalog`, type-checking every test.
    pub fn compile(cond: &JoinCondition, catalog: &Catalog) -> Result<CompiledJoin, CompileError> {
        let mut alphas = Vec::with_capacity(cond.arity());
        for p in cond.premises() {
            let rel = catalog
                .relation(p.relation())
                .ok_or_else(|| CompileError::NoSuchRelation(p.relation().to_string()))?;
            let bound = p.bind(rel.schema()).map_err(|error| CompileError::Bind {
                relation: p.relation().to_string(),
                error,
            })?;
            alphas.push(bound);
        }
        let mut plans: Vec<PremisePlan> = vec![PremisePlan::default(); cond.arity()];
        for t in cond.tests() {
            let (lix, lty) = resolve(catalog, cond, t.left, &t.left_attr)?;
            let (rix, rty) = resolve(catalog, cond, t.right, &t.right_attr)?;
            if lty != rty {
                return Err(CompileError::TypeMismatch {
                    left: format!(
                        "{}.{} ({lty:?})",
                        cond.premises()[t.left].relation(),
                        t.left_attr
                    ),
                    right: format!(
                        "{}.{} ({rty:?})",
                        cond.premises()[t.right].relation(),
                        t.right_attr
                    ),
                });
            }
            let plan = &mut plans[t.right];
            if t.op == JoinOp::Eq {
                plan.eq.push(EqStep {
                    left_premise: t.left,
                    left_attr: lix,
                    right_attr: rix,
                });
            } else {
                plan.residual.push(ResidualStep {
                    left_premise: t.left,
                    left_attr: lix,
                    op: t.op,
                    right_attr: rix,
                });
            }
        }
        Ok(CompiledJoin {
            cond: cond.clone(),
            alphas,
            plans,
        })
    }

    /// The source-level condition.
    pub fn condition(&self) -> &JoinCondition {
        &self.cond
    }

    /// Number of premises.
    pub fn arity(&self) -> usize {
        self.alphas.len()
    }

    /// Relation of premise `i`.
    pub fn relation(&self, i: usize) -> &str {
        self.cond.premises()[i].relation()
    }

    /// The bound alpha test of premise `i`.
    pub fn alpha(&self, i: usize) -> &BoundPredicate {
        &self.alphas[i]
    }

    pub(crate) fn plan(&self, i: usize) -> &PremisePlan {
        &self.plans[i]
    }
}

fn resolve(
    catalog: &Catalog,
    cond: &JoinCondition,
    premise: usize,
    attr: &str,
) -> Result<(usize, AttrType), CompileError> {
    let rel_name = cond.premises()[premise].relation();
    let rel = catalog
        .relation(rel_name)
        .ok_or_else(|| CompileError::NoSuchRelation(rel_name.to_string()))?;
    let schema = rel.schema();
    let ix = schema
        .attr_index(attr)
        .ok_or_else(|| CompileError::NoSuchAttribute {
            relation: rel_name.to_string(),
            attr: attr.to_string(),
        })?;
    Ok((ix, schema.attributes()[ix].ty))
}
