//! The named-metric registry and its text exposition.

use crate::counter::Counter;
use crate::histogram::{bucket_upper_bound, Histogram, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Histogram(Histogram),
}

/// A registry of named metrics.
///
/// Construction decides the recorder once: [`Registry::new`] hands out
/// live handles, [`Registry::disabled`] hands out no-op handles whose
/// per-event overhead is a single branch. Instrumented components keep
/// the handles; the registry is only touched to create them and to
/// [render](Registry::render_text) — so the hot path never takes the
/// registry lock.
///
/// Names follow the Prometheus convention: counters end in `_total`,
/// histograms are bare, and a `{label="value"}` suffix partitions one
/// family (e.g. `predindex_shard_lock_wait_nanos_total{shard="3"}`).
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A live registry: every handle it creates records.
    pub fn new() -> Registry {
        Registry {
            enabled: true,
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// The no-op recorder: every handle it creates is a disabled
    /// handle, and [`Registry::render_text`] renders nothing.
    pub fn disabled() -> Registry {
        Registry {
            enabled: false,
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Does this registry hand out live handles?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// Panics if `name` is already registered as a histogram — a
    /// naming bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::disabled();
        }
        // srclint:allow(no-panic-in-lib): a poisoned registry lock means a holder panicked; propagating is by design
        let mut metrics = self.metrics.lock().expect("registry lock poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::live()))
        {
            Metric::Counter(c) => c.clone(),
            // srclint:allow(no-panic-in-lib): documented panic — a counter/histogram name collision is a naming bug, not a runtime condition
            Metric::Histogram(_) => panic!("metric {name:?} is registered as a histogram"),
        }
    }

    /// The histogram registered under `name`, created on first use.
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.enabled {
            return Histogram::disabled();
        }
        // srclint:allow(no-panic-in-lib): a poisoned registry lock means a holder panicked; propagating is by design
        let mut metrics = self.metrics.lock().expect("registry lock poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::live()))
        {
            Metric::Histogram(h) => h.clone(),
            // srclint:allow(no-panic-in-lib): documented panic — a counter/histogram name collision is a naming bug, not a runtime condition
            Metric::Counter(_) => panic!("metric {name:?} is registered as a counter"),
        }
    }

    /// Current value of a registered counter (test/report convenience).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        // srclint:allow(no-panic-in-lib): a poisoned registry lock means a holder panicked; propagating is by design
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        match metrics.get(name)? {
            Metric::Counter(c) => Some(c.get()),
            Metric::Histogram(_) => None,
        }
    }

    /// `(count, sum)` of a registered histogram.
    pub fn histogram_totals(&self, name: &str) -> Option<(u64, u64)> {
        // srclint:allow(no-panic-in-lib): a poisoned registry lock means a holder panicked; propagating is by design
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        match metrics.get(name)? {
            Metric::Histogram(h) => Some((h.count(), h.sum())),
            Metric::Counter(_) => None,
        }
    }

    /// Sum of every registered counter whose name starts with `prefix`
    /// — collapses a labelled family (`foo_total{shard="..."}`) into
    /// one number.
    pub fn counter_family_total(&self, prefix: &str) -> u64 {
        // srclint:allow(no-panic-in-lib): a poisoned registry lock means a holder panicked; propagating is by design
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        metrics
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .filter_map(|(_, m)| match m {
                Metric::Counter(c) => Some(c.get()),
                Metric::Histogram(_) => None,
            })
            .sum()
    }

    /// Snapshot of every registered histogram as
    /// `(name, count, sum, buckets)`, name-sorted — the quantile
    /// estimator's input (see [`crate::quantile`]).
    pub fn histogram_snapshots(&self) -> Vec<(String, u64, u64, [u64; HISTOGRAM_BUCKETS])> {
        // srclint:allow(no-panic-in-lib): a poisoned registry lock means a holder panicked; propagating is by design
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        metrics
            .iter()
            .filter_map(|(name, m)| match m {
                Metric::Histogram(h) => Some((name.clone(), h.count(), h.sum(), h.buckets())),
                Metric::Counter(_) => None,
            })
            .collect()
    }

    /// Registered metric names in sorted order.
    pub fn names(&self) -> Vec<String> {
        // srclint:allow(no-panic-in-lib): a poisoned registry lock means a holder panicked; propagating is by design
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        metrics.keys().cloned().collect()
    }

    /// Prometheus-style text exposition of every registered metric.
    ///
    /// Histogram buckets are cumulative (`le` is an inclusive upper
    /// bound); empty buckets below the highest occupied one are
    /// skipped, since cumulative counts make them redundant.
    pub fn render_text(&self) -> String {
        // srclint:allow(no-panic-in-lib): a poisoned registry lock means a holder panicked; propagating is by design
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, metric) in metrics.iter() {
            // `foo_total{shard="3"}` and `foo_total{shard="4"}` share
            // one family and therefore one TYPE line.
            let family = name.split('{').next().unwrap_or(name);
            match metric {
                Metric::Counter(c) => {
                    if family != last_family {
                        let _ = writeln!(out, "# TYPE {family} counter");
                        last_family = family.to_string();
                    }
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Histogram(h) => {
                    if family != last_family {
                        let _ = writeln!(out, "# TYPE {family} histogram");
                        last_family = family.to_string();
                    }
                    let buckets = h.buckets();
                    let mut cumulative = 0u64;
                    for (i, &n) in buckets.iter().enumerate().take(HISTOGRAM_BUCKETS) {
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cumulative}",
                            bucket_upper_bound(i)
                        );
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                    // Tail-latency comment: estimated from the bucket
                    // snapshot above, as a `#` line so strict
                    // Prometheus parsers skip it.
                    if h.count() > 0 {
                        let _ = writeln!(out, "{}", crate::profile::quantile_line(name, &buckets));
                    }
                }
            }
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::disabled()
    }
}
