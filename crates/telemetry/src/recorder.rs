//! The flight recorder: post-mortem dumps of the trace ring.
//!
//! The [`Tracer`](crate::Tracer) ring always holds the last moments of
//! execution, which makes it exactly the evidence wanted when
//! something goes wrong after hours of healthy traffic. A
//! [`FlightRecorder`] pairs the ring with the metric
//! [`Registry`](crate::Registry) and a dump directory: on demand
//! ([`dump`](FlightRecorder::dump)), or automatically when a panic
//! unwinds through an [installed hook](FlightRecorder::install_panic_hook),
//! it writes one timestamped file holding
//!
//! 1. a header (reason, wall-clock time, event/drop counts),
//! 2. the full Prometheus exposition of the registry, and
//! 3. the ring as Chrome trace-event JSON (extract the final line and
//!    load it in Perfetto).
//!
//! The durable layer wires a recorder into `DurableRuleEngine` so a
//! recovery `Corrupt` refusal ships context instead of just an error
//! string.
//!
//! ```
//! use std::sync::Arc;
//! use telemetry::{FlightRecorder, Registry, Tracer};
//!
//! let dir = std::env::temp_dir().join("telemetry-doc-flight");
//! let tracer = Tracer::new(256);
//! let registry = Arc::new(Registry::new());
//! registry.counter("rules_fired_total").add(3);
//! {
//!     let _s = tracer.span("cascade");
//! }
//! let recorder = FlightRecorder::new(tracer, Arc::clone(&registry), &dir);
//! let path = recorder.dump("doc-example").unwrap();
//! let text = std::fs::read_to_string(&path).unwrap();
//! assert!(text.contains("rules_fired_total 3"));
//! assert!(text.contains("\"traceEvents\""));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::profile::Profiler;
use crate::registry::Registry;
use crate::trace::Tracer;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Pairs the trace ring with the metric registry and knows where to
/// write post-mortem dumps.
pub struct FlightRecorder {
    tracer: Tracer,
    registry: Arc<Registry>,
    /// When enabled, dumps carry the per-rule cost accounts and the
    /// slow-op ring after the metrics section.
    profiler: Profiler,
    /// When set, dumps carry the index advisor's report (an opaque
    /// text producer — the advisor lives above this crate).
    advisor: Option<Arc<dyn Fn() -> String + Send + Sync>>,
    dir: PathBuf,
    /// Disambiguates dumps landing in the same wall-clock second.
    seq: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("dir", &self.dir)
            .field("tracer", &self.tracer)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder that dumps into `dir` (created on first dump).
    pub fn new(tracer: Tracer, registry: Arc<Registry>, dir: impl Into<PathBuf>) -> FlightRecorder {
        FlightRecorder {
            tracer,
            registry,
            profiler: Profiler::disabled(),
            advisor: None,
            dir: dir.into(),
            seq: AtomicU64::new(0),
        }
    }

    /// Attaches a [`Profiler`] whose accounts and slow-op ring join
    /// every dump (builder-style, for construction sites).
    pub fn with_profiler(mut self, profiler: Profiler) -> FlightRecorder {
        self.profiler = profiler;
        self
    }

    /// Attaches an index-advisor report producer whose text joins
    /// every dump — a crashed process leaves behind not just what it
    /// was doing but what its workload wanted the index to look like.
    pub fn with_advisor(
        mut self,
        advisor: impl Fn() -> String + Send + Sync + 'static,
    ) -> FlightRecorder {
        self.advisor = Some(Arc::new(advisor));
        self
    }

    /// The ring this recorder snapshots.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The directory dumps are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Renders the dump body without touching the filesystem — the
    /// ring is snapshotted, not drained, so a dump never destroys the
    /// evidence it reports.
    pub fn render(&self, reason: &str) -> String {
        let events = self.tracer.events();
        let unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(out, "# flight dump: {reason}");
        let _ = writeln!(out, "# unix_time: {unix}");
        let _ = writeln!(
            out,
            "# events: {} (capacity {}, {} dropped)",
            events.len(),
            self.tracer.capacity(),
            self.tracer.dropped()
        );
        out.push_str("\n== metrics ==\n");
        let metrics = self.registry.render_text();
        if metrics.is_empty() {
            out.push_str("(registry disabled or empty)\n");
        } else {
            out.push_str(&metrics);
        }
        if self.profiler.is_enabled() {
            out.push('\n');
            out.push_str(&self.profiler.render_flight());
        }
        if let Some(advisor) = &self.advisor {
            out.push_str("\n== advisor (index recommendations) ==\n");
            out.push_str(&advisor());
        }
        out.push_str("\n== trace (chrome JSON, last line) ==\n");
        out.push_str(&crate::trace::chrome_trace_json(&events));
        out.push('\n');
        out
    }

    /// Writes a dump file and returns its path. `reason` becomes part
    /// of the header and is sanitised into the filename.
    pub fn dump(&self, reason: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let slug: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(32)
            .collect();
        let path = self.dir.join(format!("flight-{unix}-{n}-{slug}.txt"));
        fs::write(&path, self.render(reason))?;
        Ok(path)
    }

    /// Installs a panic hook that writes a dump before the default
    /// handler runs. The hook stays active until the returned guard
    /// drops; the previous hook is always chained, so backtraces and
    /// other handlers keep working.
    ///
    /// The wrapper closure itself remains in the hook chain after the
    /// guard drops (hooks cannot be safely un-chained once another
    /// layer may have stacked on top) — deactivation is by flag, which
    /// makes the guard sound even with overlapping scopes.
    pub fn install_panic_hook(self: &Arc<Self>) -> PanicHookGuard {
        let active = Arc::new(AtomicBool::new(true));
        let recorder = Arc::clone(self);
        let flag = Arc::clone(&active);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if flag.load(Ordering::Relaxed) {
                let _ = recorder.dump("panic");
            }
            previous(info);
        }));
        PanicHookGuard { active }
    }
}

/// Deactivates the associated panic hook when dropped.
#[must_use = "the panic hook deactivates when this guard drops"]
pub struct PanicHookGuard {
    active: Arc<AtomicBool>,
}

impl Drop for PanicHookGuard {
    fn drop(&mut self) {
        self.active.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("telemetry-flight-{}-{label}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn dump_contains_metrics_and_trace() {
        let dir = temp_dir("dump");
        let tracer = Tracer::new(64);
        let registry = Arc::new(Registry::new());
        registry.counter("rules_fired_total").add(7);
        {
            let _s = tracer.span("wal_append");
        }
        let recorder = FlightRecorder::new(tracer, registry, &dir);
        let path = recorder.dump("unit test!").unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("flight-"), "bad name {name}");
        assert!(name.contains("unit-test"), "reason not slugged: {name}");
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("# flight dump: unit test!"));
        assert!(text.contains("rules_fired_total 7"));
        assert!(text.contains("\"name\":\"wal_append\""));
        // Dumping snapshots rather than drains: evidence survives.
        assert_eq!(recorder.tracer().events().len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_includes_profiler_sections_when_attached() {
        let dir = temp_dir("profile");
        let registry = Arc::new(Registry::new());
        let profiler = crate::profile::Profiler::new(&registry);
        profiler.credit_firing(4);
        profiler.name_rule(4, "noisy");
        profiler.set_slow_threshold_nanos(1);
        profiler.record_request("insert", Some(0xbeef), 50, Default::default());
        let recorder = FlightRecorder::new(Tracer::new(16), registry, &dir).with_profiler(profiler);
        let text = recorder.render("why");
        assert!(text.contains("== profile (per-rule accounts) =="));
        assert!(text.contains("noisy"));
        assert!(text.contains("== slow ops =="));
        assert!(text.contains("0xbeef"));
        // Without a profiler the sections stay out.
        let plain = FlightRecorder::new(Tracer::new(16), Arc::new(Registry::new()), &dir);
        assert!(!plain.render("x").contains("== profile"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_includes_advisor_section_when_attached() {
        let dir = temp_dir("advisor");
        let recorder = FlightRecorder::new(Tracer::new(16), Arc::new(Registry::new()), &dir)
            .with_advisor(|| "emp.0: best=naive margin=2.10x\n".to_string());
        let text = recorder.render("why");
        assert!(text.contains("== advisor (index recommendations) =="));
        assert!(text.contains("best=naive"));
        // Without an advisor the section stays out.
        let plain = FlightRecorder::new(Tracer::new(16), Arc::new(Registry::new()), &dir);
        assert!(!plain.render("x").contains("== advisor"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequential_dumps_get_distinct_paths() {
        let dir = temp_dir("seq");
        let recorder = FlightRecorder::new(Tracer::new(16), Arc::new(Registry::disabled()), &dir);
        let a = recorder.dump("x").unwrap();
        let b = recorder.dump("x").unwrap();
        assert_ne!(a, b);
        let text = fs::read_to_string(&a).unwrap();
        assert!(text.contains("(registry disabled or empty)"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panic_hook_dumps_then_deactivates() {
        let dir = temp_dir("panic");
        let tracer = Tracer::new(32);
        tracer.instant("before_crash");
        let recorder = Arc::new(FlightRecorder::new(tracer, Arc::new(Registry::new()), &dir));
        {
            let _guard = recorder.install_panic_hook();
            let result = std::panic::catch_unwind(|| panic!("boom"));
            assert!(result.is_err());
        }
        let dumps: Vec<_> = fs::read_dir(&dir).unwrap().flatten().collect();
        assert_eq!(dumps.len(), 1, "hook must dump exactly once");
        let text = fs::read_to_string(dumps[0].path()).unwrap();
        assert!(text.contains("# flight dump: panic"));
        assert!(text.contains("before_crash"));

        // Guard dropped: a later panic must not dump again.
        let result = std::panic::catch_unwind(|| panic!("boom 2"));
        assert!(result.is_err());
        assert_eq!(fs::read_dir(&dir).unwrap().flatten().count(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
