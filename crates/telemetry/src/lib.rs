//! # Runtime observability for the predicate-matching stack
//!
//! Section 5 of Hanson et al. analyses the predicate-matching scheme
//! entirely in terms of *countable work*: IBS-tree nodes visited per
//! stab, marks examined, residual (full-conjunction) tests run, and
//! the §5.2 per-tuple cost decomposition. This crate makes that work
//! observable on a live system, in two halves:
//!
//! * **Metrics** — lock-free [`Counter`]s and fixed power-of-two
//!   bucket [`Histogram`]s behind cheap clonable handles, collected in
//!   a named [`Registry`] that renders a Prometheus-style text
//!   exposition ([`Registry::render_text`]). The recorder is chosen at
//!   construction: a [`Registry::disabled`] registry hands out handles
//!   whose per-event cost is a single branch, so instrumentation can
//!   stay compiled into every hot path.
//! * **EXPLAIN traces** — [`MatchTrace`], the Figure 1 path one tuple
//!   actually took (relation hash, per-attribute stab work, the
//!   non-indexable sweep, residual pass/fail per predicate), rendered
//!   as a human-readable report mirroring the paper's §5.2 cost table.
//! * **Span tracing** — a [`Tracer`] ring of begin/end/instant events
//!   with per-thread nesting and a Chrome trace-event JSON export
//!   (Perfetto-loadable), the same disabled-path contract as the
//!   registry. The ring doubles as a [`FlightRecorder`] post-mortem
//!   buffer, and [`serve`] exposes `/metrics`, `/health`, and `/trace`
//!   over a dependency-free HTTP responder.
//!
//! The crate is std-only and dependency-free; the relational layers
//! (`predindex`, `rules`, `durable`) hold the handles and fill in the
//! traces.
//!
//! ```
//! use telemetry::Registry;
//!
//! let registry = Registry::new();
//! let stabs = registry.counter("predindex_ibs_nodes_visited_total");
//! let fsync = registry.histogram("wal_fsync_nanos");
//!
//! stabs.add(17);
//! fsync.record(1_200);
//!
//! let text = registry.render_text();
//! assert!(text.contains("predindex_ibs_nodes_visited_total 17"));
//! assert!(text.contains("wal_fsync_nanos_count 1"));
//!
//! // The disabled recorder: same call sites, one branch per event.
//! let off = Registry::disabled();
//! let noop = off.counter("predindex_ibs_nodes_visited_total");
//! noop.add(17);
//! assert_eq!(noop.get(), 0);
//! assert!(off.render_text().is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

mod counter;
mod explain;
mod histogram;
mod profile;
mod recorder;
mod registry;
mod server;
mod trace;
mod workload;

pub use counter::Counter;
pub use explain::{MatchTrace, ResidualTrace, StabTrace};
pub use histogram::{bucket_index, bucket_upper_bound, quantile, Histogram, HISTOGRAM_BUCKETS};
pub use profile::{
    AccountSnapshot, CostSnapshot, Profiler, SlowOp, EXTERNAL_ACCOUNT, SLOW_OP_CAPACITY,
};
pub use recorder::{FlightRecorder, PanicHookGuard};
pub use registry::Registry;
pub use server::{
    serve, serve_with_advisor, serve_with_profiler, wake_addr, AdvisorHook, HealthFn, ServerHandle,
};
pub use trace::{
    chrome_trace_json, Span, SpanEventKind, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY,
};
pub use workload::{
    AttrRecorder, AttrUsage, ClauseShape, RelationRecorder, RelationUsage, WorkloadStats,
    WorkloadSummary, WorkloadWindow, WORKLOAD_WINDOW_CAPACITY,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let r = Registry::new();
        let c = r.counter("x_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter_value("x_total"), Some(5));
        // Same name, same cell.
        let c2 = r.counter("x_total");
        c2.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let r = Registry::disabled();
        let c = r.counter("x_total");
        let h = r.histogram("y");
        c.add(100);
        h.record(100);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert!(h.start_timer().is_none());
        assert!(r.render_text().is_empty());
        assert!(r.names().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn render_groups_labelled_families() {
        let r = Registry::new();
        r.counter("f_total{shard=\"0\"}").add(1);
        r.counter("f_total{shard=\"1\"}").add(2);
        let text = r.render_text();
        assert_eq!(text.matches("# TYPE f_total counter").count(), 1);
        assert!(text.contains("f_total{shard=\"0\"} 1"));
        assert!(text.contains("f_total{shard=\"1\"} 2"));
        assert_eq!(r.counter_family_total("f_total"), 3);
    }

    #[test]
    #[should_panic(expected = "registered as a histogram")]
    fn type_clash_panics() {
        let r = Registry::new();
        r.histogram("m");
        r.counter("m");
    }

    #[test]
    fn histogram_render_is_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat");
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(3); // bucket 2
        h.record(3); // bucket 2
        let text = r.render_text();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"0\"} 1"));
        assert!(text.contains("lat_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_bucket{le=\"3\"} 4"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_sum 7"));
        assert!(text.contains("lat_count 4"));
    }

    #[test]
    fn render_text_order_is_deterministic() {
        // Insertion order is scrambled on purpose; the exposition must
        // come out name-sorted and byte-identical across renders, so
        // snapshots and flight dumps diff cleanly.
        let r = Registry::new();
        r.counter("z_total").add(3);
        r.counter("a_total{shard=\"1\"}").add(2);
        r.histogram("m_nanos").record(1);
        r.counter("a_total{shard=\"0\"}").add(1);
        let expected = "\
# TYPE a_total counter
a_total{shard=\"0\"} 1
a_total{shard=\"1\"} 2
# TYPE m_nanos histogram
m_nanos_bucket{le=\"1\"} 1
m_nanos_bucket{le=\"+Inf\"} 1
m_nanos_sum 1
m_nanos_count 1
# quantiles m_nanos p50=1 p95=1 p99=1
# TYPE z_total counter
z_total 3
";
        assert_eq!(r.render_text(), expected);
        assert_eq!(r.render_text(), r.render_text());
    }

    #[test]
    fn trace_display_mentions_every_stage() {
        let trace = MatchTrace {
            relation: "emp".into(),
            tuple: "(61, 12000)".into(),
            shard: Some(3),
            relation_indexed: true,
            stabs: vec![StabTrace {
                attr: 1,
                attr_name: "age".into(),
                value: "61".into(),
                nodes_visited: 5,
                marks_scanned: 7,
                less_hits: 1,
                eq_hits: 2,
                greater_hits: 3,
                universal_hits: 1,
                tree_intervals: 40,
                tree_height: 6,
            }],
            non_indexable_scanned: 2,
            residual: vec![
                ResidualTrace {
                    predicate: 9,
                    pass: true,
                    source: "emp.age > 50".into(),
                },
                ResidualTrace {
                    predicate: 11,
                    pass: false,
                    source: "emp.age > 70".into(),
                },
            ],
            join_steps: Vec::new(),
        };
        assert_eq!(trace.partial_matches(), 2);
        assert_eq!(trace.matched(), vec![9]);
        assert_eq!(trace.nodes_visited(), 5);
        assert_eq!(trace.marks_scanned(), 7);
        let text = trace.to_string();
        for needle in [
            "relation hash",
            "shard 3",
            "IBS-tree stabs",
            "5 nodes visited",
            "non-indexable",
            "residual tests",
            "2 partial match(es) -> 1 full match(es)",
            "PASS",
            "fail",
            "cost: hash=1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
