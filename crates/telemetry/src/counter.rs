//! Lock-free monotone counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cheap, clonable handle to one monotone counter.
///
/// The handle carries its enabled flag by value, so a disabled counter
/// costs exactly one predictable branch per [`Counter::add`] — no
/// atomic traffic, no pointer chase. Handles from a disabled
/// [`Registry`](crate::Registry) (or from [`Counter::disabled`]) share
/// a cell that is never read, so instrumented code needs no `Option`
/// plumbing: it always holds a handle and always calls it.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: bool,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A live counter starting at zero.
    pub(crate) fn live() -> Counter {
        Counter {
            enabled: true,
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A permanently no-op counter (the swappable disabled recorder).
    pub fn disabled() -> Counter {
        Counter {
            enabled: false,
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Does this handle record anything?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n`. Disabled: a branch and nothing else.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 forever on a disabled handle).
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::disabled()
    }
}
