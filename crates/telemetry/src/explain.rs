//! Match EXPLAIN traces: the Figure 1 path one tuple actually took,
//! with the countable work of each stage — the runtime twin of the
//! paper's §5.2 per-tuple cost breakdown.
//!
//! The types here are deliberately plain (strings and integers): this
//! crate sits below the relational stack, so the index layers fill a
//! [`MatchTrace`] in and attach their own meaning to the ids.

use std::fmt;

/// One per-attribute IBS-tree stab.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StabTrace {
    /// Schema position of the stabbed attribute.
    pub attr: usize,
    /// Attribute name when the caller knows the schema (else `#n`).
    pub attr_name: String,
    /// Display form of the tuple value driving the stab.
    pub value: String,
    /// Endpoint nodes visited on the search path.
    pub nodes_visited: u64,
    /// Marks collected across all visited slots.
    pub marks_scanned: u64,
    /// Marks collected from `<` slots (descended left).
    pub less_hits: u64,
    /// Marks collected from `=` slots (exact endpoint hit).
    pub eq_hits: u64,
    /// Marks collected from `>` slots (descended right).
    pub greater_hits: u64,
    /// Universal intervals `(-inf, +inf)` reported unconditionally.
    pub universal_hits: u64,
    /// Intervals indexed in this attribute's tree.
    pub tree_intervals: usize,
    /// Height of this attribute's tree.
    pub tree_height: u32,
}

/// One residual (full-conjunction) test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidualTrace {
    /// The partially matched predicate's id.
    pub predicate: u32,
    /// Did the full conjunction hold?
    pub pass: bool,
    /// Source text of the predicate, when it has one.
    pub source: String,
}

/// The full Figure 1 path for one tuple: hash → per-attribute stabs →
/// non-indexable list → residual tests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MatchTrace {
    /// Relation the tuple belongs to.
    pub relation: String,
    /// Display form of the tuple.
    pub tuple: String,
    /// Which shard the relation hashed to (sharded front-end only).
    pub shard: Option<usize>,
    /// Did the relation-name hash find a second-level index?
    pub relation_indexed: bool,
    /// Per-attribute stab work, ordered by attribute.
    pub stabs: Vec<StabTrace>,
    /// Predicates swept from the non-indexable list.
    pub non_indexable_scanned: usize,
    /// Residual tests in partial-match order.
    pub residual: Vec<ResidualTrace>,
    /// Beta-layer (join memo) narration, one line per step — filled by
    /// engines that route alpha matches into a join layer; empty when
    /// no join conditions are involved.
    pub join_steps: Vec<String>,
}

impl MatchTrace {
    /// Size of the partial-match set (every candidate is residual-tested).
    pub fn partial_matches(&self) -> usize {
        self.residual.len()
    }

    /// Ids that survived the residual test.
    pub fn matched(&self) -> Vec<u32> {
        self.residual
            .iter()
            .filter(|r| r.pass)
            .map(|r| r.predicate)
            .collect()
    }

    /// Total IBS-tree nodes visited across all stabs (the paper's
    /// "IBS-tree search cost" term, in countable form).
    pub fn nodes_visited(&self) -> u64 {
        self.stabs.iter().map(|s| s.nodes_visited).sum()
    }

    /// Total marks examined across all stabs.
    pub fn marks_scanned(&self) -> u64 {
        self.stabs.iter().map(|s| s.marks_scanned).sum()
    }
}

impl fmt::Display for MatchTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXPLAIN match {}{}", self.relation, self.tuple)?;
        match self.shard {
            Some(s) => writeln!(
                f,
                "  1. relation hash     {:12} -> shard {s}, {}",
                self.relation,
                if self.relation_indexed {
                    "second-level index found"
                } else {
                    "no predicates registered"
                }
            )?,
            None => writeln!(
                f,
                "  1. relation hash     {:12} -> {}",
                self.relation,
                if self.relation_indexed {
                    "second-level index found"
                } else {
                    "no predicates registered"
                }
            )?,
        }
        if self.stabs.is_empty() {
            writeln!(f, "  2. IBS-tree stabs    (no attribute trees)")?;
        } else {
            writeln!(f, "  2. IBS-tree stabs")?;
            for s in &self.stabs {
                writeln!(
                    f,
                    "       attr {:10} = {:>8}: {} nodes visited, {} marks \
                     (<:{} =:{} >:{} inf:{}) of {} intervals, height {}",
                    s.attr_name,
                    s.value,
                    s.nodes_visited,
                    s.marks_scanned,
                    s.less_hits,
                    s.eq_hits,
                    s.greater_hits,
                    s.universal_hits,
                    s.tree_intervals,
                    s.tree_height,
                )?;
            }
        }
        writeln!(
            f,
            "  3. non-indexable     {} predicate(s) swept",
            self.non_indexable_scanned
        )?;
        let passed = self.residual.iter().filter(|r| r.pass).count();
        writeln!(
            f,
            "  4. residual tests    {} partial match(es) -> {} full match(es)",
            self.partial_matches(),
            passed
        )?;
        for r in &self.residual {
            writeln!(
                f,
                "       #{:<4} {}  {}",
                r.predicate,
                if r.pass { "PASS" } else { "fail" },
                r.source
            )?;
        }
        if !self.join_steps.is_empty() {
            writeln!(f, "  5. join memo (beta layer)")?;
            for step in &self.join_steps {
                writeln!(f, "       {step}")?;
            }
        }
        // The §5.2 accounting: one line per cost-model term, in units
        // of countable work instead of 1989 milliseconds.
        writeln!(
            f,
            "  cost: hash=1  ibs_nodes={}  marks={}  seq_tests={}  residual_tests={}",
            self.nodes_visited(),
            self.marks_scanned(),
            self.non_indexable_scanned,
            self.partial_matches(),
        )
    }
}
