//! A dependency-free metrics exposition server.
//!
//! One `std::net::TcpListener` accept thread answering three paths,
//! enough for a Prometheus scraper, a load balancer, and a human with
//! `curl`:
//!
//! * `GET /metrics` — the registry's Prometheus text exposition.
//! * `GET /health`  — a short `key value` liveness report supplied by
//!   the engine through an opaque callback (the telemetry crate knows
//!   nothing about engines).
//! * `GET /trace`   — drains the trace ring as Chrome trace-event
//!   JSON; save the body and load it in Perfetto.
//!
//! This is deliberately not a web framework: each connection is
//! answered by a short-lived thread (so a stalled scraper can never
//! hold a liveness probe hostage), only the request line is routed on,
//! and anything unrecognised is a 404. Shutdown is graceful — the
//! handle sets a stop flag, wakes the (blocking) accept with a
//! self-connect, and joins the accept thread.
//!
//! ```
//! use std::io::{Read, Write};
//! use std::sync::Arc;
//! use telemetry::{serve, Registry, Tracer};
//!
//! let registry = Arc::new(Registry::new());
//! registry.counter("rules_fired_total").add(2);
//! let server = serve("127.0.0.1:0", Arc::clone(&registry), Tracer::disabled(), None).unwrap();
//!
//! let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
//! write!(conn, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
//! let mut body = String::new();
//! conn.read_to_string(&mut body).unwrap();
//! assert!(body.contains("rules_fired_total 2"));
//!
//! server.shutdown();
//! ```

use crate::profile::Profiler;
use crate::registry::Registry;
use crate::trace::Tracer;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on request-header lines drained per request; anything
/// longer is a hostile client and gets its reply early.
const MAX_HEADER_LINES: usize = 256;

/// The `/health` body producer: returns `key value` lines. Opaque so
/// higher layers (the durable engine knows its WAL sequence and shard
/// balance) can report without this crate depending on them.
pub type HealthFn = Box<dyn Fn() -> String + Send + Sync>;

/// The `/advisor` producer pair, opaque for the same reason as
/// [`HealthFn`]: the index advisor lives above this crate (it knows
/// the §5.2 backend cost model), so the server only asks it for bodies.
pub struct AdvisorHook {
    json: Box<dyn Fn() -> String + Send + Sync>,
    comment: Box<dyn Fn() -> String + Send + Sync>,
}

impl AdvisorHook {
    /// `json` answers `GET /advisor` (a `telemetry/advisor-v1`
    /// document); `comment` yields `# advisor ...` lines appended to
    /// the `/metrics` exposition (each line must start with `#` so
    /// scrapers parse past them).
    pub fn new(
        json: impl Fn() -> String + Send + Sync + 'static,
        comment: impl Fn() -> String + Send + Sync + 'static,
    ) -> AdvisorHook {
        AdvisorHook {
            json: Box::new(json),
            comment: Box::new(comment),
        }
    }
}

impl std::fmt::Debug for AdvisorHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdvisorHook").finish_non_exhaustive()
    }
}

/// A running exposition server; dropping it without
/// [`shutdown`](ServerHandle::shutdown) detaches the accept thread
/// (it exits with the process).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHandle {
    /// The bound address (useful with a `:0` ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Stops accepting, wakes the accept thread, and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept call blocks; a throwaway connection unblocks it
        // so it can observe the flag. A wildcard bind (`0.0.0.0:p`)
        // is not itself a connectable destination everywhere, so dial
        // the loopback equivalent instead of the bound address.
        let _ = TcpStream::connect(wake_addr(self.addr));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The address a local client should dial to reach a listener bound at
/// `addr`: for a concrete IP that is the address itself, but wildcard
/// binds (`0.0.0.0` / `[::]`) listen everywhere without being a valid
/// destination on every platform, so substitute the matching loopback.
pub fn wake_addr(addr: SocketAddr) -> SocketAddr {
    let mut addr = addr;
    if addr.ip().is_unspecified() {
        match addr {
            SocketAddr::V4(_) => addr.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST)),
            SocketAddr::V6(_) => addr.set_ip(IpAddr::V6(Ipv6Addr::LOCALHOST)),
        }
    }
    addr
}

/// Binds `bind` (e.g. `"127.0.0.1:9184"`, or port `0` for ephemeral)
/// and serves `/metrics`, `/health`, `/trace`, `/profile`, and `/top`
/// until [`ServerHandle::shutdown`]. Without a profiler the last two
/// still answer, with empty accounts but live histogram quantiles; use
/// [`serve_with_profiler`] to wire real attribution in.
pub fn serve(
    bind: &str,
    registry: Arc<Registry>,
    tracer: Tracer,
    health: Option<HealthFn>,
) -> io::Result<ServerHandle> {
    serve_with_profiler(bind, registry, tracer, health, Profiler::disabled())
}

/// [`serve`] plus a [`Profiler`]: `/profile` reports its per-rule
/// accounts, slow-op ring, and the registry's histogram quantiles as
/// one JSON document, and `/top` the cost ranking.
pub fn serve_with_profiler(
    bind: &str,
    registry: Arc<Registry>,
    tracer: Tracer,
    health: Option<HealthFn>,
    profiler: Profiler,
) -> io::Result<ServerHandle> {
    serve_with_advisor(bind, registry, tracer, health, profiler, None)
}

/// [`serve_with_profiler`] plus an [`AdvisorHook`]: `/advisor` reports
/// the index advisor's ranked backend recommendations, and `/metrics`
/// gains its `# advisor` comment lines. Without a hook `/advisor`
/// answers 200 with an empty `telemetry/advisor-v1` document, so
/// scripted consumers need no probe.
pub fn serve_with_advisor(
    bind: &str,
    registry: Arc<Registry>,
    tracer: Tracer,
    health: Option<HealthFn>,
    profiler: Profiler,
    advisor: Option<AdvisorHook>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let health = Arc::new(health);
    let advisor = Arc::new(advisor);
    let thread = std::thread::Builder::new()
        .name("telemetry-exposition".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                // Even with per-connection threads a stalled client
                // should release its thread promptly.
                let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = conn.set_write_timeout(Some(Duration::from_secs(2)));
                // One short-lived thread per connection: a client that
                // connects and sends nothing ties up only its own
                // thread for the read timeout, never the accept loop —
                // liveness probes must not queue behind a stalled
                // scraper.
                let registry = Arc::clone(&registry);
                let tracer = tracer.clone();
                let health = Arc::clone(&health);
                let profiler = profiler.clone();
                let advisor = Arc::clone(&advisor);
                let _ = std::thread::Builder::new()
                    .name("telemetry-conn".into())
                    .spawn(move || {
                        let _ = handle(
                            conn,
                            &registry,
                            &tracer,
                            health.as_deref(),
                            &profiler,
                            advisor.as_ref().as_ref(),
                        );
                    });
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

fn handle(
    conn: TcpStream,
    registry: &Registry,
    tracer: &Tracer,
    health: Option<&(dyn Fn() -> String + Send + Sync)>,
    profiler: &Profiler,
    advisor: Option<&AdvisorHook>,
) -> io::Result<()> {
    let mut reader = BufReader::new(conn);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the request headers up to the blank line before replying.
    // Answering while the client is still writing headers is an HTTP
    // violation: a keep-alive client (curl) sees the response overlap
    // its request, and a reply-then-close can RST away the body. The
    // line cap bounds a malicious never-ending header stream; the
    // read timeout bounds a stalled one.
    for _ in 0..MAX_HEADER_LINES {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    // "GET /path HTTP/1.1" — only the path matters here.
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4; charset=utf-8", {
            let mut body = registry.render_text();
            if let Some(hook) = advisor {
                body.push_str(&(hook.comment)());
            }
            body
        }),
        "/health" => (
            "200 OK",
            "text/plain; charset=utf-8",
            health.map_or_else(|| "up 1\n".to_string(), |h| h()),
        ),
        "/trace" => ("200 OK", "application/json", tracer.drain_chrome_json()),
        "/profile" => (
            "200 OK",
            "application/json",
            profiler.profile_json(registry),
        ),
        "/top" => ("200 OK", "application/json", profiler.top_json(10)),
        "/advisor" => (
            "200 OK",
            "application/json",
            advisor.map_or_else(
                || {
                    "{\"schema\":\"telemetry/advisor-v1\",\"windowed\":false,\
                     \"recommendations\":[],\"relations\":[]}\n"
                        .to_string()
                },
                |hook| (hook.json)(),
            ),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!(
                "no route for {path:?}; try /metrics, /health, /trace, /profile, /top, /advisor\n"
            ),
        ),
    };
    let mut conn = reader.into_inner();
    write!(
        conn,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_trace_and_404() {
        let registry = Arc::new(Registry::new());
        registry.counter("predindex_match_tuples_total").add(5);
        let tracer = Tracer::new(64);
        tracer.instant("ping");
        let server = serve(
            "127.0.0.1:0",
            Arc::clone(&registry),
            tracer.clone(),
            Some(Box::new(|| "up 1\nwal_next_seq 42\n".to_string())),
        )
        .unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("predindex_match_tuples_total 5"));

        let (_, body) = get(addr, "/health");
        assert!(body.contains("wal_next_seq 42"));

        let (head, body) = get(addr, "/trace");
        assert!(head.contains("application/json"));
        assert!(body.contains("\"name\":\"ping\""));
        // /trace drains: a second scrape starts empty.
        let (_, body) = get(addr, "/trace");
        assert!(body.contains("\"traceEvents\":[]"));
        assert!(tracer.events().is_empty());

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may briefly accept on a lingering socket; a
                // request after shutdown must at least go unanswered.
                let mut c = TcpStream::connect(addr).unwrap();
                let _ = write!(c, "GET /metrics HTTP/1.1\r\n\r\n");
                c.set_read_timeout(Some(Duration::from_millis(300)))
                    .unwrap();
                let mut s = String::new();
                c.read_to_string(&mut s).unwrap_or(0) == 0
            }
        );
    }

    #[test]
    fn serves_profile_and_top() {
        let registry = Arc::new(Registry::new());
        registry.histogram("req_nanos").record(1_000);
        let profiler = Profiler::new(&registry);
        profiler.credit_firing(3);
        profiler.name_rule(3, "reorder");
        let server = serve_with_profiler(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Tracer::disabled(),
            None,
            profiler,
        )
        .unwrap();

        let (head, body) = get(server.addr(), "/profile");
        assert!(head.contains("application/json"));
        assert!(body.contains("\"schema\":\"telemetry/profile-v1\""));
        assert!(body.contains("\"rule\":\"3\""));
        assert!(body.contains("\"name\":\"req_nanos\""));

        let (_, body) = get(server.addr(), "/top");
        assert!(body.contains("\"schema\":\"telemetry/top-v1\""));
        assert!(body.contains("\"reorder\""));

        let (_, body) = get(server.addr(), "/nope");
        assert!(body.contains("/profile"));
        server.shutdown();
    }

    #[test]
    fn serves_advisor_json_and_metric_comments() {
        let registry = Arc::new(Registry::new());
        registry.counter("rules_fired_total").add(1);
        let hook = AdvisorHook::new(
            || "{\"schema\":\"telemetry/advisor-v1\",\"recommendations\":[]}\n".to_string(),
            || "# advisor emp.0 best=ibs margin=1.50x\n".to_string(),
        );
        let server = serve_with_advisor(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Tracer::disabled(),
            None,
            Profiler::disabled(),
            Some(hook),
        )
        .unwrap();

        let (head, body) = get(server.addr(), "/advisor");
        assert!(head.contains("application/json"));
        assert!(body.contains("\"schema\":\"telemetry/advisor-v1\""));

        // /metrics keeps the exposition and appends the comment lines.
        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("rules_fired_total 1"));
        assert!(body.contains("# advisor emp.0 best=ibs margin=1.50x"));

        let (_, body) = get(server.addr(), "/nope");
        assert!(body.contains("/advisor"));
        server.shutdown();
    }

    #[test]
    fn advisor_route_answers_empty_without_a_hook() {
        let server = serve(
            "127.0.0.1:0",
            Arc::new(Registry::disabled()),
            Tracer::disabled(),
            None,
        )
        .unwrap();
        let (head, body) = get(server.addr(), "/advisor");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("\"recommendations\":[]"));
        server.shutdown();
    }

    #[test]
    fn plain_serve_answers_profile_with_empty_accounts() {
        let registry = Arc::new(Registry::new());
        registry.histogram("h").record(4);
        let server = serve(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Tracer::disabled(),
            None,
        )
        .unwrap();
        let (head, body) = get(server.addr(), "/profile");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("\"accounts\":[]"));
        // Quantiles still come from the live registry.
        assert!(body.contains("\"name\":\"h\""));
        server.shutdown();
    }

    #[test]
    fn concurrent_trace_drains_never_double_deliver() {
        // Two clients racing GET /trace must split the ring: every
        // event delivered exactly once across both bodies, no panics.
        const EVENTS: usize = 500;
        let tracer = Tracer::new(2048);
        for _ in 0..EVENTS {
            tracer.instant("race_evt");
        }
        let server = serve(
            "127.0.0.1:0",
            Arc::new(Registry::disabled()),
            tracer.clone(),
            None,
        )
        .unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let (head, body) = get(addr, "/trace");
                    assert!(head.starts_with("HTTP/1.1 200 OK"));
                    body.matches("\"race_evt\"").count()
                })
            })
            .collect();
        let total: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, EVENTS, "drain lost or duplicated events");
        assert!(tracer.events().is_empty());
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_a_wildcard_bind() {
        // Regression: the shutdown self-connect used the bound address
        // verbatim, and connecting to 0.0.0.0 can fail — leaving the
        // accept thread blocked and `join` hung forever.
        let server = serve(
            "0.0.0.0:0",
            Arc::new(Registry::disabled()),
            Tracer::disabled(),
            None,
        )
        .unwrap();
        assert!(server.addr().ip().is_unspecified());
        let done = std::thread::spawn(move || server.shutdown());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !done.is_finished() {
            assert!(
                std::time::Instant::now() < deadline,
                "shutdown of a 0.0.0.0 bind hung"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        done.join().unwrap();
    }

    #[test]
    fn wake_addr_rewrites_only_unspecified_ips() {
        let wild: SocketAddr = "0.0.0.0:9184".parse().unwrap();
        assert_eq!(wake_addr(wild), "127.0.0.1:9184".parse().unwrap());
        let wild6: SocketAddr = "[::]:9184".parse().unwrap();
        assert_eq!(wake_addr(wild6), "[::1]:9184".parse().unwrap());
        let concrete: SocketAddr = "192.0.2.7:80".parse().unwrap();
        assert_eq!(wake_addr(concrete), concrete);
    }

    #[test]
    fn a_stalled_connection_does_not_block_other_requests() {
        let server = serve(
            "127.0.0.1:0",
            Arc::new(Registry::disabled()),
            Tracer::disabled(),
            None,
        )
        .unwrap();
        // Connect and send nothing: under the old serial accept loop
        // this held every later request hostage for the full 2 s read
        // timeout.
        let stalled = TcpStream::connect(server.addr()).unwrap();
        let started = std::time::Instant::now();
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, "up 1\n");
        assert!(
            started.elapsed() < Duration::from_millis(1500),
            "/health queued behind a stalled connection: {:?}",
            started.elapsed()
        );
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn headers_are_drained_before_the_reply() {
        let registry = Arc::new(Registry::new());
        registry.counter("rules_fired_total").add(3);
        let server = serve(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Tracer::disabled(),
            None,
        )
        .unwrap();
        // Dribble the headers out slowly: the server must wait for the
        // blank line (i.e. consume the full request) before replying.
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        write!(conn, "GET /metrics HTTP/1.1\r\nHost: t\r\n").unwrap();
        conn.flush().unwrap();
        std::thread::sleep(Duration::from_millis(100));
        write!(conn, "User-Agent: dribble\r\nAccept: */*\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("Connection: close"));
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .parse()
            .unwrap();
        assert_eq!(content_length, body.len());
        assert!(body.contains("rules_fired_total 3"));
        server.shutdown();
    }

    #[test]
    fn default_health_reports_up() {
        let server = serve(
            "127.0.0.1:0",
            Arc::new(Registry::disabled()),
            Tracer::disabled(),
            None,
        )
        .unwrap();
        let (_, body) = get(server.addr(), "/health");
        assert_eq!(body, "up 1\n");
        server.shutdown();
    }
}
