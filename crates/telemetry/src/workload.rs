//! Per-relation+attribute workload accounts: the observation half of
//! the ROADMAP's adaptive-index-selection loop.
//!
//! The §5.2 cost model prices an index by op mix (stabs vs inserts vs
//! deletes), live predicate population, and stab selectivity — all
//! quantities a running matcher can observe. [`WorkloadStats`] is the
//! clonable handle the predicate index records into: one counter cell
//! bundle per `(relation, attribute)` (stab count, stab hits, insert /
//! delete counts split by clause shape, an interval-length histogram
//! and a hits-per-stab overlap histogram), plus per-relation accounts
//! for the non-indexable list and tuple arrivals.
//!
//! Totals are monotone registry counters (so they show up on
//! `/metrics` like everything else); *rates* come from
//! [`WorkloadStats::sample_window`], which snapshots the totals,
//! diffs them against the previous snapshot, and pushes the delta
//! into a bounded ring of [`WorkloadWindow`]s. An advisor reading
//! [`WorkloadStats::summary`] therefore sees the recent op mix, not
//! the since-boot average.
//!
//! The disabled handle follows the crate contract: every recording
//! call is one predictable branch and nothing else.

use crate::counter::Counter;
use crate::histogram::{quantile, Histogram};
use crate::registry::Registry;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Bounded window-ring capacity: enough history for a trend, small
/// enough that sampling every scrape never grows memory.
pub const WORKLOAD_WINDOW_CAPACITY: usize = 32;

/// The shape of the clause a predicate contributes to its attribute's
/// interval index — the paper's `<` / `=` / `>` / interval taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClauseShape {
    /// Open-ended below: `x < b` / `x <= b`.
    Less,
    /// A point: `x = k`.
    Eq,
    /// Open-ended above: `x > a` / `x >= a`.
    Greater,
    /// Bounded on both sides (or unbounded on both — a universal
    /// clause behaves like a maximal interval).
    Interval,
}

impl ClauseShape {
    /// Every shape, in label order.
    pub const ALL: [ClauseShape; 4] = [
        ClauseShape::Less,
        ClauseShape::Eq,
        ClauseShape::Greater,
        ClauseShape::Interval,
    ];

    /// The metric-label value for this shape.
    pub fn label(self) -> &'static str {
        match self {
            ClauseShape::Less => "less",
            ClauseShape::Eq => "eq",
            ClauseShape::Greater => "greater",
            ClauseShape::Interval => "interval",
        }
    }

    /// Array slot for per-shape tallies (matches [`ClauseShape::ALL`]).
    pub fn index(self) -> usize {
        match self {
            ClauseShape::Less => 0,
            ClauseShape::Eq => 1,
            ClauseShape::Greater => 2,
            ClauseShape::Interval => 3,
        }
    }
}

/// Registry cells for one `(relation, attribute)` account.
#[derive(Debug)]
struct AttrCells {
    stabs: Counter,
    stab_hits: Counter,
    shape_inserts: [Counter; 4],
    shape_deletes: [Counter; 4],
    /// Finite interval lengths at insert time (points record 0;
    /// open-ended and non-numeric intervals are not recorded).
    length: Histogram,
    /// Hits per stab — the observed overlap / selectivity histogram.
    overlap: Histogram,
}

/// Registry cells for one relation's non-attribute accounts.
#[derive(Debug)]
struct RelationCells {
    tuples: Counter,
    non_indexable_inserts: Counter,
    non_indexable_deletes: Counter,
}

/// Monotone tallies of one attribute account, used for window deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct AttrTotals {
    stabs: u64,
    stab_hits: u64,
    shape_inserts: [u64; 4],
    shape_deletes: [u64; 4],
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RelationTotals {
    tuples: u64,
    non_indexable_inserts: u64,
    non_indexable_deletes: u64,
}

/// One `(relation, attribute)` account as a reader sees it: either
/// lifetime totals, or one window's deltas (in a window the monotone
/// fields are deltas while `live` and the histogram-derived fields are
/// the state at sample time).
#[derive(Debug, Clone, PartialEq)]
pub struct AttrUsage {
    pub relation: String,
    /// Schema position of the attribute.
    pub attr: usize,
    /// Stabs against this attribute's tree.
    pub stabs: u64,
    /// Total ids those stabs reported.
    pub stab_hits: u64,
    /// Predicate inserts split by clause shape ([`ClauseShape::ALL`]
    /// order).
    pub shape_inserts: [u64; 4],
    /// Predicate deletes, same split.
    pub shape_deletes: [u64; 4],
    /// Live predicates by clause shape (lifetime inserts − deletes).
    pub live: [u64; 4],
    /// Observations in the interval-length histogram (lifetime).
    pub length_count: u64,
    /// Sum of recorded interval lengths (lifetime).
    pub length_sum: u64,
    /// Median recorded interval length (lifetime).
    pub p50_length: u64,
    /// p99 of hits-per-stab (lifetime).
    pub p99_overlap: u64,
}

impl AttrUsage {
    /// Total predicate inserts across shapes.
    pub fn inserts(&self) -> u64 {
        self.shape_inserts.iter().sum()
    }

    /// Total predicate deletes across shapes.
    pub fn deletes(&self) -> u64 {
        self.shape_deletes.iter().sum()
    }

    /// Live predicates across shapes.
    pub fn live_total(&self) -> u64 {
        self.live.iter().sum()
    }

    /// Mean ids reported per stab — the observed overlap at the stab
    /// points, the §5.2 `L` term per probe.
    pub fn mean_hits(&self) -> f64 {
        if self.stabs == 0 {
            0.0
        } else {
            self.stab_hits as f64 / self.stabs as f64
        }
    }
}

/// One relation's non-attribute account (same delta-vs-lifetime
/// convention as [`AttrUsage`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationUsage {
    pub relation: String,
    /// Tuples presented to the matcher for this relation.
    pub tuples: u64,
    /// Predicates appended to the non-indexable list.
    pub non_indexable_inserts: u64,
    /// Predicates removed from the non-indexable list.
    pub non_indexable_deletes: u64,
    /// Live non-indexable predicates (lifetime inserts − deletes).
    pub live_non_indexable: u64,
}

/// One sampled window: the account deltas since the previous sample.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadWindow {
    /// 1-based sample sequence number.
    pub seq: u64,
    /// Wall-clock span of the window.
    pub elapsed_nanos: u64,
    /// Per-attribute deltas (sorted by relation, then attribute).
    pub attrs: Vec<AttrUsage>,
    /// Per-relation deltas (sorted by relation).
    pub relations: Vec<RelationUsage>,
}

/// The rolled-up view an advisor consumes: every window currently in
/// the ring summed together, or the lifetime totals when nothing has
/// been sampled yet.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// True when the summary came from sampled windows (rates), false
    /// when it fell back to lifetime totals.
    pub windowed: bool,
    /// Windows aggregated (0 on the lifetime fallback).
    pub windows: usize,
    /// Wall-clock span covered.
    pub elapsed_nanos: u64,
    pub attrs: Vec<AttrUsage>,
    pub relations: Vec<RelationUsage>,
}

#[derive(Debug)]
struct WindowState {
    ring: VecDeque<WorkloadWindow>,
    last_attr: BTreeMap<(String, usize), AttrTotals>,
    last_rel: BTreeMap<String, RelationTotals>,
    last_at: Instant,
    seq: u64,
}

#[derive(Debug)]
struct Inner {
    registry: Arc<Registry>,
    attrs: RwLock<HashMap<String, HashMap<usize, Arc<AttrCells>>>>,
    relations: RwLock<HashMap<String, Arc<RelationCells>>>,
    windows: Mutex<WindowState>,
    windows_sampled: Counter,
}

/// A pre-resolved handle onto one `(relation, attr)` account. Minting
/// ([`WorkloadStats::attr_recorder`]) pays the lock-and-map lookup
/// once; recording through the handle is a few atomic adds, which is
/// what lets the match path keep per-stab accounting without hashing
/// the relation name on every tuple. The default handle is a no-op.
#[derive(Debug, Clone, Default)]
pub struct AttrRecorder {
    cells: Option<Arc<AttrCells>>,
}

impl AttrRecorder {
    /// Does this handle record anywhere?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cells.is_some()
    }

    /// One stab of the account's tree reporting `hits` ids.
    #[inline]
    pub fn record_stab(&self, hits: u64) {
        if let Some(cells) = &self.cells {
            cells.stabs.inc();
            cells.stab_hits.add(hits);
            cells.overlap.record(hits);
        }
    }

    /// One predicate placed into the account's tree.
    pub fn record_insert(&self, shape: ClauseShape, length: Option<u64>) {
        if let Some(cells) = &self.cells {
            cells.shape_inserts[shape.index()].inc();
            if let Some(len) = length {
                cells.length.record(len);
            }
        }
    }

    /// One predicate removed from the account's tree.
    pub fn record_delete(&self, shape: ClauseShape) {
        if let Some(cells) = &self.cells {
            cells.shape_deletes[shape.index()].inc();
        }
    }
}

/// A pre-resolved handle onto one relation's account — the
/// per-relation counterpart of [`AttrRecorder`]. Default is a no-op.
#[derive(Debug, Clone, Default)]
pub struct RelationRecorder {
    cells: Option<Arc<RelationCells>>,
}

impl RelationRecorder {
    /// Does this handle record anywhere?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cells.is_some()
    }

    /// One tuple presented to the matcher for this relation.
    #[inline]
    pub fn record_tuple(&self) {
        if let Some(cells) = &self.cells {
            cells.tuples.inc();
        }
    }

    /// One predicate appended to the relation's non-indexable list.
    pub fn record_non_indexable_insert(&self) {
        if let Some(cells) = &self.cells {
            cells.non_indexable_inserts.inc();
        }
    }

    /// One predicate removed from the relation's non-indexable list.
    pub fn record_non_indexable_delete(&self) {
        if let Some(cells) = &self.cells {
            cells.non_indexable_deletes.inc();
        }
    }
}

/// The clonable workload-account handle. Like
/// [`Counter`](crate::Counter), the enabled flag travels by value: a
/// disabled handle costs one branch per recording call.
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    enabled: bool,
    inner: Arc<Inner>,
}

impl WorkloadStats {
    /// A permanently no-op handle.
    pub fn disabled() -> WorkloadStats {
        WorkloadStats {
            enabled: false,
            inner: Arc::new(Inner::new(Arc::new(Registry::disabled()))),
        }
    }

    /// A live handle recording into `registry` (a disabled registry
    /// yields the no-op handle).
    pub fn new(registry: &Arc<Registry>) -> WorkloadStats {
        if !registry.is_enabled() {
            return WorkloadStats::disabled();
        }
        WorkloadStats {
            enabled: true,
            inner: Arc::new(Inner::new(Arc::clone(registry))),
        }
    }

    /// Does this handle record anything?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The registry the accounts live in (disabled on a no-op handle).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// Mints a cached handle onto `relation`/`attr`'s account for
    /// hot-path recording (no-op when this handle is disabled).
    pub fn attr_recorder(&self, relation: &str, attr: usize) -> AttrRecorder {
        if !self.enabled {
            return AttrRecorder::default();
        }
        AttrRecorder {
            cells: Some(self.inner.attr_cells(relation, attr)),
        }
    }

    /// Mints a cached handle onto `relation`'s account for hot-path
    /// recording (no-op when this handle is disabled).
    pub fn relation_recorder(&self, relation: &str) -> RelationRecorder {
        if !self.enabled {
            return RelationRecorder::default();
        }
        RelationRecorder {
            cells: Some(self.inner.relation_cells(relation)),
        }
    }

    /// One stab of `relation`/`attr`'s tree reporting `hits` ids.
    #[inline]
    pub fn record_stab(&self, relation: &str, attr: usize, hits: u64) {
        if !self.enabled {
            return;
        }
        let cells = self.inner.attr_cells(relation, attr);
        cells.stabs.inc();
        cells.stab_hits.add(hits);
        cells.overlap.record(hits);
    }

    /// One predicate placed into `relation`/`attr`'s tree. `length` is
    /// the finite interval length when it has one (0 for a point).
    pub fn record_insert(
        &self,
        relation: &str,
        attr: usize,
        shape: ClauseShape,
        length: Option<u64>,
    ) {
        if !self.enabled {
            return;
        }
        let cells = self.inner.attr_cells(relation, attr);
        cells.shape_inserts[shape.index()].inc();
        if let Some(len) = length {
            cells.length.record(len);
        }
    }

    /// One predicate removed from `relation`/`attr`'s tree.
    pub fn record_delete(&self, relation: &str, attr: usize, shape: ClauseShape) {
        if !self.enabled {
            return;
        }
        self.inner.attr_cells(relation, attr).shape_deletes[shape.index()].inc();
    }

    /// One predicate appended to `relation`'s non-indexable list.
    pub fn record_non_indexable_insert(&self, relation: &str) {
        if !self.enabled {
            return;
        }
        self.inner
            .relation_cells(relation)
            .non_indexable_inserts
            .inc();
    }

    /// One predicate removed from `relation`'s non-indexable list.
    pub fn record_non_indexable_delete(&self, relation: &str) {
        if !self.enabled {
            return;
        }
        self.inner
            .relation_cells(relation)
            .non_indexable_deletes
            .inc();
    }

    /// One tuple presented to the matcher for `relation`.
    #[inline]
    pub fn record_tuple(&self, relation: &str) {
        if !self.enabled {
            return;
        }
        self.inner.relation_cells(relation).tuples.inc();
    }

    /// Lifetime account snapshots (sorted by relation, then attribute).
    pub fn lifetime(&self) -> (Vec<AttrUsage>, Vec<RelationUsage>) {
        if !self.enabled {
            return (Vec::new(), Vec::new());
        }
        (self.inner.attr_lifetime(), self.inner.relation_lifetime())
    }

    /// Closes the current window: diffs the lifetime totals against
    /// the previous sample and pushes the delta into the bounded ring.
    /// Returns the new window (`None` on a disabled handle).
    pub fn sample_window(&self) -> Option<WorkloadWindow> {
        if !self.enabled {
            return None;
        }
        let attrs = self.inner.attr_lifetime();
        let relations = self.inner.relation_lifetime();
        // srclint:allow(no-panic-in-lib): a poisoned window ring means a holder panicked; propagating is by design
        let mut state = self.inner.windows.lock().expect("window ring poisoned");
        let now = Instant::now();
        let elapsed =
            u64::try_from(now.duration_since(state.last_at).as_nanos()).unwrap_or(u64::MAX);
        state.last_at = now;
        state.seq += 1;

        let mut window = WorkloadWindow {
            seq: state.seq,
            elapsed_nanos: elapsed,
            attrs: Vec::with_capacity(attrs.len()),
            relations: Vec::with_capacity(relations.len()),
        };
        for usage in attrs {
            let key = (usage.relation.clone(), usage.attr);
            let totals = AttrTotals {
                stabs: usage.stabs,
                stab_hits: usage.stab_hits,
                shape_inserts: usage.shape_inserts,
                shape_deletes: usage.shape_deletes,
            };
            let prev = state.last_attr.insert(key, totals).unwrap_or_default();
            let mut delta = usage;
            delta.stabs = totals.stabs.saturating_sub(prev.stabs);
            delta.stab_hits = totals.stab_hits.saturating_sub(prev.stab_hits);
            for i in 0..4 {
                delta.shape_inserts[i] =
                    totals.shape_inserts[i].saturating_sub(prev.shape_inserts[i]);
                delta.shape_deletes[i] =
                    totals.shape_deletes[i].saturating_sub(prev.shape_deletes[i]);
            }
            window.attrs.push(delta);
        }
        for usage in relations {
            let totals = RelationTotals {
                tuples: usage.tuples,
                non_indexable_inserts: usage.non_indexable_inserts,
                non_indexable_deletes: usage.non_indexable_deletes,
            };
            let prev = state
                .last_rel
                .insert(usage.relation.clone(), totals)
                .unwrap_or_default();
            let mut delta = usage;
            delta.tuples = totals.tuples.saturating_sub(prev.tuples);
            delta.non_indexable_inserts = totals
                .non_indexable_inserts
                .saturating_sub(prev.non_indexable_inserts);
            delta.non_indexable_deletes = totals
                .non_indexable_deletes
                .saturating_sub(prev.non_indexable_deletes);
            window.relations.push(delta);
        }
        if state.ring.len() == WORKLOAD_WINDOW_CAPACITY {
            state.ring.pop_front();
        }
        state.ring.push_back(window.clone());
        drop(state);
        self.inner.windows_sampled.inc();
        Some(window)
    }

    /// Rebases the window clock: current lifetime totals become the
    /// next window's baseline and the ring is emptied, so everything
    /// recorded so far (e.g. setup/load traffic) is excluded from
    /// every future window and [`summary`](Self::summary). Live
    /// populations are unaffected — they are derived from lifetime
    /// counters, not window deltas.
    pub fn rebase(&self) {
        if !self.enabled {
            return;
        }
        self.sample_window();
        // srclint:allow(no-panic-in-lib): a poisoned window ring means a holder panicked; propagating is by design
        let mut state = self.inner.windows.lock().expect("window ring poisoned");
        state.ring.clear();
    }

    /// The windows currently in the ring, oldest first.
    pub fn windows(&self) -> Vec<WorkloadWindow> {
        if !self.enabled {
            return Vec::new();
        }
        // srclint:allow(no-panic-in-lib): a poisoned window ring means a holder panicked; propagating is by design
        let state = self.inner.windows.lock().expect("window ring poisoned");
        state.ring.iter().cloned().collect()
    }

    /// The ring rolled up into one view: window deltas summed (with
    /// `live` and histogram-derived fields taken from the newest
    /// window), falling back to lifetime totals before the first
    /// sample.
    pub fn summary(&self) -> WorkloadSummary {
        let windows = self.windows();
        if windows.is_empty() {
            let (attrs, relations) = self.lifetime();
            return WorkloadSummary {
                windowed: false,
                windows: 0,
                elapsed_nanos: 0,
                attrs,
                relations,
            };
        }
        let mut elapsed = 0u64;
        let mut attrs: BTreeMap<(String, usize), AttrUsage> = BTreeMap::new();
        let mut relations: BTreeMap<String, RelationUsage> = BTreeMap::new();
        for window in &windows {
            elapsed = elapsed.saturating_add(window.elapsed_nanos);
            for usage in &window.attrs {
                let key = (usage.relation.clone(), usage.attr);
                match attrs.entry(key) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(usage.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let agg = e.get_mut();
                        agg.stabs += usage.stabs;
                        agg.stab_hits += usage.stab_hits;
                        for i in 0..4 {
                            agg.shape_inserts[i] += usage.shape_inserts[i];
                            agg.shape_deletes[i] += usage.shape_deletes[i];
                        }
                        // State-at-sample fields track the newest window.
                        agg.live = usage.live;
                        agg.length_count = usage.length_count;
                        agg.length_sum = usage.length_sum;
                        agg.p50_length = usage.p50_length;
                        agg.p99_overlap = usage.p99_overlap;
                    }
                }
            }
            for usage in &window.relations {
                match relations.entry(usage.relation.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(usage.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let agg = e.get_mut();
                        agg.tuples += usage.tuples;
                        agg.non_indexable_inserts += usage.non_indexable_inserts;
                        agg.non_indexable_deletes += usage.non_indexable_deletes;
                        agg.live_non_indexable = usage.live_non_indexable;
                    }
                }
            }
        }
        WorkloadSummary {
            windowed: true,
            windows: windows.len(),
            elapsed_nanos: elapsed,
            attrs: attrs.into_values().collect(),
            relations: relations.into_values().collect(),
        }
    }
}

impl Default for WorkloadStats {
    fn default() -> Self {
        WorkloadStats::disabled()
    }
}

impl Inner {
    fn new(registry: Arc<Registry>) -> Inner {
        let windows_sampled = registry.counter("workload_windows_sampled_total");
        Inner {
            registry,
            attrs: RwLock::new(HashMap::new()),
            relations: RwLock::new(HashMap::new()),
            windows: Mutex::new(WindowState {
                ring: VecDeque::new(),
                last_attr: BTreeMap::new(),
                last_rel: BTreeMap::new(),
                last_at: Instant::now(),
                seq: 0,
            }),
            windows_sampled,
        }
    }

    /// Read-probe-then-write-mint, the same discipline as
    /// `IndexMetrics`' lazy families: the hot path pays one shared
    /// lock and a hash probe once the cells exist.
    fn attr_cells(&self, relation: &str, attr: usize) -> Arc<AttrCells> {
        {
            // srclint:allow(no-panic-in-lib): a poisoned account map means a holder panicked; propagating is by design
            let map = self.attrs.read().expect("workload map poisoned");
            if let Some(cells) = map.get(relation).and_then(|inner| inner.get(&attr)) {
                return Arc::clone(cells);
            }
        }
        let r = &self.registry;
        let cells = Arc::new(AttrCells {
            stabs: r.counter(&format!(
                "workload_stabs_total{{relation=\"{relation}\",attr=\"{attr}\"}}"
            )),
            stab_hits: r.counter(&format!(
                "workload_stab_hits_total{{relation=\"{relation}\",attr=\"{attr}\"}}"
            )),
            shape_inserts: std::array::from_fn(|i| {
                let shape = ClauseShape::ALL[i].label();
                r.counter(&format!(
                    "workload_shape_inserts_total{{relation=\"{relation}\",attr=\"{attr}\",shape=\"{shape}\"}}"
                ))
            }),
            shape_deletes: std::array::from_fn(|i| {
                let shape = ClauseShape::ALL[i].label();
                r.counter(&format!(
                    "workload_shape_deletes_total{{relation=\"{relation}\",attr=\"{attr}\",shape=\"{shape}\"}}"
                ))
            }),
            length: r.histogram(&format!(
                "workload_interval_length{{relation=\"{relation}\",attr=\"{attr}\"}}"
            )),
            overlap: r.histogram(&format!(
                "workload_stab_overlap{{relation=\"{relation}\",attr=\"{attr}\"}}"
            )),
        });
        self.attrs
            // srclint:allow(lock-order): strictly sequential — the probe's read guard is dropped at its block end before the mint takes the write lock
            .write()
            // srclint:allow(no-panic-in-lib): a poisoned account map means a holder panicked; propagating is by design
            .expect("workload map poisoned")
            .entry(relation.to_string())
            .or_default()
            .entry(attr)
            .or_insert(cells)
            .clone()
    }

    fn relation_cells(&self, relation: &str) -> Arc<RelationCells> {
        {
            // srclint:allow(no-panic-in-lib): a poisoned account map means a holder panicked; propagating is by design
            let map = self.relations.read().expect("workload map poisoned");
            if let Some(cells) = map.get(relation) {
                return Arc::clone(cells);
            }
        }
        let r = &self.registry;
        let cells = Arc::new(RelationCells {
            tuples: r.counter(&format!("workload_tuples_total{{relation=\"{relation}\"}}")),
            non_indexable_inserts: r.counter(&format!(
                "workload_non_indexable_inserts_total{{relation=\"{relation}\"}}"
            )),
            non_indexable_deletes: r.counter(&format!(
                "workload_non_indexable_deletes_total{{relation=\"{relation}\"}}"
            )),
        });
        self.relations
            // srclint:allow(lock-order): strictly sequential — the probe's read guard is dropped at its block end before the mint takes the write lock
            .write()
            // srclint:allow(no-panic-in-lib): a poisoned account map means a holder panicked; propagating is by design
            .expect("workload map poisoned")
            .entry(relation.to_string())
            .or_insert(cells)
            .clone()
    }

    fn attr_lifetime(&self) -> Vec<AttrUsage> {
        // srclint:allow(no-panic-in-lib): a poisoned account map means a holder panicked; propagating is by design
        let map = self.attrs.read().expect("workload map poisoned");
        let mut out = Vec::new();
        for (relation, inner) in map.iter() {
            for (&attr, cells) in inner.iter() {
                let shape_inserts: [u64; 4] = std::array::from_fn(|i| cells.shape_inserts[i].get());
                let shape_deletes: [u64; 4] = std::array::from_fn(|i| cells.shape_deletes[i].get());
                let overlap_buckets = cells.overlap.buckets();
                let length_buckets = cells.length.buckets();
                out.push(AttrUsage {
                    relation: relation.clone(),
                    attr,
                    stabs: cells.stabs.get(),
                    stab_hits: cells.stab_hits.get(),
                    shape_inserts,
                    shape_deletes,
                    live: std::array::from_fn(|i| {
                        shape_inserts[i].saturating_sub(shape_deletes[i])
                    }),
                    length_count: cells.length.count(),
                    length_sum: cells.length.sum(),
                    p50_length: quantile(&length_buckets, 0.5),
                    p99_overlap: quantile(&overlap_buckets, 0.99),
                });
            }
        }
        out.sort_by(|a, b| (&a.relation, a.attr).cmp(&(&b.relation, b.attr)));
        out
    }

    fn relation_lifetime(&self) -> Vec<RelationUsage> {
        // srclint:allow(no-panic-in-lib): a poisoned account map means a holder panicked; propagating is by design
        let map = self.relations.read().expect("workload map poisoned");
        let mut out: Vec<RelationUsage> = map
            .iter()
            .map(|(relation, cells)| {
                let inserts = cells.non_indexable_inserts.get();
                let deletes = cells.non_indexable_deletes.get();
                RelationUsage {
                    relation: relation.clone(),
                    tuples: cells.tuples.get(),
                    non_indexable_inserts: inserts,
                    non_indexable_deletes: deletes,
                    live_non_indexable: inserts.saturating_sub(deletes),
                }
            })
            .collect();
        out.sort_by(|a, b| a.relation.cmp(&b.relation));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live() -> WorkloadStats {
        WorkloadStats::new(&Arc::new(Registry::new()))
    }

    #[test]
    fn disabled_records_nothing() {
        let w = WorkloadStats::disabled();
        assert!(!w.is_enabled());
        w.record_stab("emp", 0, 3);
        w.record_insert("emp", 0, ClauseShape::Eq, Some(0));
        w.record_tuple("emp");
        assert!(w.sample_window().is_none());
        assert!(w.windows().is_empty());
        let (attrs, rels) = w.lifetime();
        assert!(attrs.is_empty() && rels.is_empty());
        let s = w.summary();
        assert!(!s.windowed && s.attrs.is_empty());
        // A disabled registry also yields the no-op handle.
        assert!(!WorkloadStats::new(&Arc::new(Registry::disabled())).is_enabled());
    }

    #[test]
    fn accounts_accumulate_per_attribute() {
        let w = live();
        w.record_insert("emp", 0, ClauseShape::Greater, None);
        w.record_insert("emp", 0, ClauseShape::Interval, Some(40));
        w.record_insert("emp", 1, ClauseShape::Eq, Some(0));
        w.record_delete("emp", 0, ClauseShape::Greater);
        w.record_stab("emp", 0, 2);
        w.record_stab("emp", 0, 0);
        w.record_tuple("emp");
        w.record_non_indexable_insert("emp");

        let (attrs, rels) = w.lifetime();
        assert_eq!(attrs.len(), 2);
        let a0 = &attrs[0];
        assert_eq!((a0.relation.as_str(), a0.attr), ("emp", 0));
        assert_eq!(a0.stabs, 2);
        assert_eq!(a0.stab_hits, 2);
        assert_eq!(a0.inserts(), 2);
        assert_eq!(a0.deletes(), 1);
        assert_eq!(a0.live, [0, 0, 0, 1]);
        assert_eq!(a0.live_total(), 1);
        assert_eq!(a0.mean_hits(), 1.0);
        assert_eq!(a0.length_count, 1);
        assert_eq!(a0.length_sum, 40);
        assert_eq!(attrs[1].attr, 1);
        assert_eq!(attrs[1].live, [0, 1, 0, 0]);

        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].tuples, 1);
        assert_eq!(rels[0].live_non_indexable, 1);
    }

    #[test]
    fn accounts_surface_as_metric_families() {
        let registry = Arc::new(Registry::new());
        let w = WorkloadStats::new(&registry);
        w.record_insert("emp", 0, ClauseShape::Less, Some(7));
        w.record_stab("emp", 0, 5);
        w.record_tuple("emp");
        w.sample_window();
        let text = registry.render_text();
        for needle in [
            "workload_stabs_total{relation=\"emp\",attr=\"0\"} 1",
            "workload_stab_hits_total{relation=\"emp\",attr=\"0\"} 5",
            "workload_shape_inserts_total{relation=\"emp\",attr=\"0\",shape=\"less\"} 1",
            "workload_tuples_total{relation=\"emp\"} 1",
            "workload_windows_sampled_total 1",
            "workload_interval_length{relation=\"emp\",attr=\"0\"}_count 1",
            "workload_stab_overlap{relation=\"emp\",attr=\"0\"}_count 1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn windows_report_deltas_not_totals() {
        let w = live();
        w.record_stab("emp", 0, 4);
        w.record_insert("emp", 0, ClauseShape::Eq, Some(0));
        let w1 = w.sample_window().unwrap();
        assert_eq!(w1.seq, 1);
        assert_eq!(w1.attrs[0].stabs, 1);
        assert_eq!(w1.attrs[0].inserts(), 1);

        w.record_stab("emp", 0, 1);
        w.record_stab("emp", 0, 1);
        let w2 = w.sample_window().unwrap();
        assert_eq!(w2.seq, 2);
        // The second window holds only the two new stabs...
        assert_eq!(w2.attrs[0].stabs, 2);
        assert_eq!(w2.attrs[0].inserts(), 0);
        // ...while live population is the state at sample time.
        assert_eq!(w2.attrs[0].live_total(), 1);
        assert_eq!(w.windows().len(), 2);
    }

    #[test]
    fn window_ring_is_bounded() {
        let w = live();
        w.record_tuple("emp");
        for _ in 0..(WORKLOAD_WINDOW_CAPACITY + 5) {
            w.sample_window();
        }
        let windows = w.windows();
        assert_eq!(windows.len(), WORKLOAD_WINDOW_CAPACITY);
        // Oldest windows were evicted: sequence numbers keep counting.
        assert_eq!(windows[0].seq, 6);
        assert_eq!(
            w.registry().counter_value("workload_windows_sampled_total"),
            Some((WORKLOAD_WINDOW_CAPACITY + 5) as u64)
        );
    }

    #[test]
    fn summary_rolls_the_ring_up() {
        let w = live();
        // Before any sample: lifetime fallback.
        w.record_stab("emp", 0, 1);
        let s = w.summary();
        assert!(!s.windowed);
        assert_eq!(s.attrs[0].stabs, 1);

        w.sample_window();
        w.record_stab("emp", 0, 3);
        w.record_insert("emp", 0, ClauseShape::Greater, None);
        w.sample_window();
        let s = w.summary();
        assert!(s.windowed);
        assert_eq!(s.windows, 2);
        // Both windows summed: 1 stab in the first, 1 in the second.
        assert_eq!(s.attrs[0].stabs, 2);
        assert_eq!(s.attrs[0].stab_hits, 4);
        // Live comes from the newest window.
        assert_eq!(s.attrs[0].live_total(), 1);
    }

    #[test]
    fn clause_shape_labels_are_stable() {
        assert_eq!(
            ClauseShape::ALL.map(|s| s.label()),
            ["less", "eq", "greater", "interval"]
        );
        for (i, s) in ClauseShape::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
