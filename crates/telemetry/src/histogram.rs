//! Fixed-bucket latency/size histograms.
//!
//! Buckets are powers of two: bucket 0 holds the value 0 and bucket
//! `i ≥ 1` holds values whose bit length is `i`, i.e. the closed range
//! `[2^(i-1), 2^i - 1]`. Every `u64` lands in exactly one of the 65
//! buckets (`u64::MAX` has bit length 64), recording is one `leading_
//! zeros` plus two relaxed atomic adds, and rendering needs no
//! configuration — the scheme covers nanoseconds to tens of gigabytes
//! at ~2× resolution, which is all a cost counter needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of buckets: the value 0 plus one per bit length 1..=64.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
pub(crate) struct HistogramCells {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A cheap, clonable handle to one power-of-two histogram.
///
/// Like [`Counter`](crate::Counter), the enabled flag travels in the
/// handle: a disabled histogram costs one branch per record.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: bool,
    cells: Arc<HistogramCells>,
}

/// The bucket index `v` falls into.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < HISTOGRAM_BUCKETS);
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Estimates the `q`-quantile (`0.0 < q <= 1.0`) of a bucket snapshot
/// by locating the bucket holding the target rank and interpolating
/// linearly inside it — within a factor of 2 of the true value by the
/// bucket geometry, which is all a tail-latency report needs. Returns
/// 0 for an empty histogram.
pub fn quantile(buckets: &[u64; HISTOGRAM_BUCKETS], q: f64) -> u64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0;
    }
    // Smallest rank (1-based) whose cumulative count covers q.
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cumulative = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let below = cumulative;
        cumulative += n;
        if cumulative >= rank {
            let lo = if i == 0 {
                0
            } else {
                bucket_upper_bound(i - 1).saturating_add(1)
            };
            let hi = bucket_upper_bound(i);
            // Position of the target rank inside this bucket (1..=n);
            // u128 keeps bucket 64's span from overflowing.
            let pos = rank - below;
            let width = (hi - lo) as u128;
            // Clamp into the bucket: bucket 0 is the single value 0 and
            // the saturated top bucket caps at u64::MAX, so an estimate
            // must never leave [lo, hi] however the interpolation
            // rounds.
            let est = (lo as u128 + width * pos as u128 / n as u128).clamp(lo as u128, hi as u128);
            return u64::try_from(est).unwrap_or(u64::MAX);
        }
    }
    bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// A live histogram with empty buckets.
    pub(crate) fn live() -> Histogram {
        Histogram {
            enabled: true,
            cells: Arc::new(HistogramCells::default()),
        }
    }

    /// A permanently no-op histogram.
    pub fn disabled() -> Histogram {
        Histogram {
            enabled: false,
            cells: Arc::new(HistogramCells::default()),
        }
    }

    /// Does this handle record anything?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one observation. Disabled: a branch and nothing else.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled {
            self.cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.cells.sum.fetch_add(v, Ordering::Relaxed);
            self.cells.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a wall-clock measurement, or `None` when disabled — so
    /// the disabled path never even reads the clock.
    #[inline]
    pub fn start_timer(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Records the elapsed nanoseconds of a [`Histogram::start_timer`]
    /// measurement (saturating at `u64::MAX`).
    #[inline]
    pub fn stop_timer(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.cells.buckets[i].load(Ordering::Relaxed))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_empty_is_zero() {
        let buckets = [0u64; HISTOGRAM_BUCKETS];
        assert_eq!(quantile(&buckets, 0.5), 0);
        assert_eq!(quantile(&buckets, 0.99), 0);
    }

    #[test]
    fn quantile_lands_in_the_right_bucket() {
        let h = Histogram::live();
        // 90 fast observations in [8,15], 10 slow in [1024,2047].
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        let buckets = h.buckets();
        let p50 = quantile(&buckets, 0.50);
        assert!((8..=15).contains(&p50), "p50={p50}");
        let p99 = quantile(&buckets, 0.99);
        assert!((1024..=2047).contains(&p99), "p99={p99}");
        // q=1.0 is the top occupied bucket's upper region.
        assert!(quantile(&buckets, 1.0) <= 2047);
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        // All mass in one bucket: low quantiles sit near the bucket's
        // lower bound, high quantiles near its upper bound.
        let h = Histogram::live();
        for _ in 0..100 {
            h.record(1_000); // bucket [512,1023]
        }
        let buckets = h.buckets();
        let p1 = quantile(&buckets, 0.01);
        let p99 = quantile(&buckets, 0.99);
        assert!((512..=1023).contains(&p1));
        assert!((512..=1023).contains(&p99));
        assert!(p1 < p99, "p1={p1} p99={p99}");
    }

    #[test]
    fn quantile_survives_the_top_bucket() {
        let h = Histogram::live();
        h.record(u64::MAX);
        let buckets = h.buckets();
        assert!(quantile(&buckets, 0.5) >= 1u64 << 63);
    }

    #[test]
    fn quantile_in_bucket_zero_is_exactly_zero() {
        // Bucket 0 holds only the value 0: every quantile of an
        // all-zero histogram must be 0, never interpolated past it.
        let h = Histogram::live();
        for _ in 0..7 {
            h.record(0);
        }
        let buckets = h.buckets();
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(quantile(&buckets, q), 0, "q={q}");
        }
    }

    #[test]
    fn quantile_never_leaves_the_saturated_top_bucket() {
        // Many observations in bucket 64 ([2^63, u64::MAX]): every
        // quantile must stay inside the bucket bounds even where the
        // interpolation arithmetic rounds at the extremes.
        let h = Histogram::live();
        for _ in 0..100 {
            h.record(u64::MAX);
        }
        let buckets = h.buckets();
        for q in [0.01, 0.5, 0.99, 1.0] {
            let est = quantile(&buckets, q);
            assert!(est >= 1u64 << 63, "q={q} est={est}");
        }
        assert_eq!(quantile(&buckets, 1.0), u64::MAX);
    }

    #[test]
    fn quantile_stays_within_every_occupied_bucket() {
        // Mixed-bucket histogram: each quantile estimate must land
        // inside [lo, hi] of whichever bucket holds its rank.
        let h = Histogram::live();
        for v in [0u64, 0, 3, 3, 3, 200, 200, 5_000] {
            h.record(v);
        }
        let buckets = h.buckets();
        for i in 1..=100 {
            let q = i as f64 / 100.0;
            let est = quantile(&buckets, q);
            let b = bucket_index(est);
            assert!(buckets[b] > 0, "q={q} est={est} fell in empty bucket {b}");
        }
    }
}
