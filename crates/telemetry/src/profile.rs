//! Per-rule cost attribution: accounts, slow-op log, rankings.
//!
//! Section 5.2 of the paper prices one tuple's match as hash + stab +
//! residual work; the global counters in the [`Registry`] total that
//! price across the whole system. This module splits the bill: every
//! unit of match/join/cascade work is *attributed* to the rule that
//! caused it — level-0 (client-injected) events bill the reserved
//! `external` account, cascaded events bill the rule whose firing
//! queued them, join probes bill the rule owning the join condition,
//! firings bill the fired rule. The invariant the root integration
//! test pins: for every cost term, the accounts sum to the global
//! counter.
//!
//! A [`Profiler`] is a cheap clonable handle with the same disabled
//! contract as [`Counter`](crate::Counter): a disabled profiler costs
//! one branch per call site and mints nothing. An enabled profiler
//! keeps its accounts as labelled counter families
//! (`profile_rule_*_total{rule="3"}`) in the registry it was built
//! over, so `/metrics`, `/profile`, and flight dumps all read the same
//! cells.
//!
//! The profiler also owns the **slow-op ring**: a bounded log of
//! requests whose wall-clock exceeded a configurable threshold, each
//! with its wire trace id (if the client stamped one) and the full
//! [`CostSnapshot`] delta the request consumed. The ring keeps the
//! newest [`SLOW_OP_CAPACITY`] entries; readers snapshot, they never
//! drain.

use crate::counter::Counter;
use crate::histogram::{quantile, HISTOGRAM_BUCKETS};
use crate::registry::Registry;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Label value of the account billed for client-injected work.
pub const EXTERNAL_ACCOUNT: &str = "external";

/// Entries the slow-op ring retains (newest win).
pub const SLOW_OP_CAPACITY: usize = 64;

/// One account's (or one request's) §5.2 cost terms, as plain numbers.
///
/// Each field mirrors a global metric family; see the DESIGN.md §11
/// table. `stab_nanos` is wall-clock spent in the matching stage; the
/// rest are work counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    /// Wall-clock nanos spent matching (predicate-index stabs plus
    /// residual tests, measured around the batch call).
    pub stab_nanos: u64,
    /// IBS-tree endpoint nodes visited.
    pub ibs_nodes: u64,
    /// Interval marks scanned.
    pub ibs_marks: u64,
    /// Residual (full-conjunction) tests run.
    pub residual_tests: u64,
    /// Residual tests that held.
    pub residual_passes: u64,
    /// Predicates swept from non-indexable lists.
    pub non_indexable: u64,
    /// Join-memo candidate tokens examined.
    pub join_probes: u64,
    /// Join-memo tokens retracted.
    pub join_retractions: u64,
    /// Rule firings.
    pub firings: u64,
    /// Database operations processed (external + cascaded).
    pub ops: u64,
}

impl CostSnapshot {
    /// Field-wise `self - earlier` (saturating; counters are monotone,
    /// so a live delta never actually saturates).
    pub fn delta_since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            stab_nanos: self.stab_nanos.saturating_sub(earlier.stab_nanos),
            ibs_nodes: self.ibs_nodes.saturating_sub(earlier.ibs_nodes),
            ibs_marks: self.ibs_marks.saturating_sub(earlier.ibs_marks),
            residual_tests: self.residual_tests.saturating_sub(earlier.residual_tests),
            residual_passes: self.residual_passes.saturating_sub(earlier.residual_passes),
            non_indexable: self.non_indexable.saturating_sub(earlier.non_indexable),
            join_probes: self.join_probes.saturating_sub(earlier.join_probes),
            join_retractions: self
                .join_retractions
                .saturating_sub(earlier.join_retractions),
            firings: self.firings.saturating_sub(earlier.firings),
            ops: self.ops.saturating_sub(earlier.ops),
        }
    }

    /// Total *work units* (every term except the nanos) — the
    /// tie-breaker the top-K ranking uses under equal stab time.
    pub fn work(&self) -> u64 {
        self.ibs_nodes
            .saturating_add(self.ibs_marks)
            .saturating_add(self.residual_tests)
            .saturating_add(self.non_indexable)
            .saturating_add(self.join_probes)
            .saturating_add(self.join_retractions)
            .saturating_add(self.firings)
            .saturating_add(self.ops)
    }

    fn json(&self) -> String {
        format!(
            "{{\"stab_nanos\":{},\"ibs_nodes\":{},\"ibs_marks\":{},\"residual_tests\":{},\
             \"residual_passes\":{},\"non_indexable\":{},\"join_probes\":{},\
             \"join_retractions\":{},\"firings\":{},\"ops\":{}}}",
            self.stab_nanos,
            self.ibs_nodes,
            self.ibs_marks,
            self.residual_tests,
            self.residual_passes,
            self.non_indexable,
            self.join_probes,
            self.join_retractions,
            self.firings,
            self.ops
        )
    }
}

/// One account's current state, for rankings and rendering.
#[derive(Debug, Clone)]
pub struct AccountSnapshot {
    /// `None` = the external account (client-injected work).
    pub rule: Option<u32>,
    /// The rule's name, when the engine registered one.
    pub name: Option<String>,
    /// The accumulated cost terms.
    pub cost: CostSnapshot,
}

impl AccountSnapshot {
    /// The account's label value (`"external"` or the rule id digits).
    pub fn label(&self) -> String {
        match self.rule {
            Some(rid) => rid.to_string(),
            None => EXTERNAL_ACCOUNT.to_string(),
        }
    }
}

/// One over-threshold request captured by the slow-op ring.
#[derive(Debug, Clone)]
pub struct SlowOp {
    /// Profiler-assigned request ordinal (counts *all* observed
    /// requests, so gaps show how many fast ones passed between slow
    /// ones).
    pub seq: u64,
    /// Wire op name (`insert`, `sync`, ...).
    pub op: String,
    /// The client-stamped wire trace id, if the request carried one.
    pub trace_id: Option<u64>,
    /// Queue + processing wall-clock.
    pub nanos: u64,
    /// The cost delta the request consumed.
    pub cost: CostSnapshot,
}

/// The per-account counter cells. All registry-backed, so the families
/// render in `/metrics` alongside the globals they partition.
#[derive(Debug, Clone)]
struct Account {
    stab_nanos: Counter,
    ibs_nodes: Counter,
    ibs_marks: Counter,
    residual_tests: Counter,
    residual_passes: Counter,
    non_indexable: Counter,
    join_probes: Counter,
    join_retractions: Counter,
    firings: Counter,
    ops: Counter,
}

impl Account {
    fn mint(registry: &Registry, label: &str) -> Account {
        Account {
            stab_nanos: registry.counter(&format!(
                "profile_rule_stab_nanos_total{{rule=\"{label}\"}}"
            )),
            ibs_nodes: registry
                .counter(&format!("profile_rule_ibs_nodes_total{{rule=\"{label}\"}}")),
            ibs_marks: registry
                .counter(&format!("profile_rule_ibs_marks_total{{rule=\"{label}\"}}")),
            residual_tests: registry.counter(&format!(
                "profile_rule_residual_tests_total{{rule=\"{label}\"}}"
            )),
            residual_passes: registry.counter(&format!(
                "profile_rule_residual_passes_total{{rule=\"{label}\"}}"
            )),
            non_indexable: registry.counter(&format!(
                "profile_rule_non_indexable_total{{rule=\"{label}\"}}"
            )),
            join_probes: registry.counter(&format!(
                "profile_rule_join_probes_total{{rule=\"{label}\"}}"
            )),
            join_retractions: registry.counter(&format!(
                "profile_rule_join_retractions_total{{rule=\"{label}\"}}"
            )),
            firings: registry.counter(&format!("profile_rule_firings_total{{rule=\"{label}\"}}")),
            ops: registry.counter(&format!("profile_rule_ops_total{{rule=\"{label}\"}}")),
        }
    }

    fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            stab_nanos: self.stab_nanos.get(),
            ibs_nodes: self.ibs_nodes.get(),
            ibs_marks: self.ibs_marks.get(),
            residual_tests: self.residual_tests.get(),
            residual_passes: self.residual_passes.get(),
            non_indexable: self.non_indexable.get(),
            join_probes: self.join_probes.get(),
            join_retractions: self.join_retractions.get(),
            firings: self.firings.get(),
            ops: self.ops.get(),
        }
    }
}

/// Handles on the *global* cost-term counters the accounts partition.
/// Reading them before/after a bounded piece of work yields the exact
/// delta to credit, because the engine processes events serially.
#[derive(Debug, Clone)]
struct Sources {
    ibs_nodes: Counter,
    ibs_marks: Counter,
    residual_tests: Counter,
    residual_passes: Counter,
    non_indexable: Counter,
    join_probes: Counter,
    join_retractions: Counter,
    firings: Counter,
    ops: Counter,
}

impl Sources {
    fn mint(registry: &Registry) -> Sources {
        Sources {
            ibs_nodes: registry.counter("predindex_ibs_nodes_visited_total"),
            ibs_marks: registry.counter("predindex_ibs_marks_scanned_total"),
            residual_tests: registry.counter("predindex_residual_tests_total"),
            residual_passes: registry.counter("predindex_residual_passes_total"),
            non_indexable: registry.counter("predindex_non_indexable_scanned_total"),
            join_probes: registry.counter("join_probes_total"),
            join_retractions: registry.counter("join_retractions_total"),
            firings: registry.counter("rules_fired_total"),
            ops: registry.counter("rules_ops_applied_total"),
        }
    }
}

struct Inner {
    registry: Arc<Registry>,
    sources: Sources,
    accounts: Mutex<BTreeMap<Option<u32>, Account>>,
    names: Mutex<BTreeMap<u32, String>>,
    slow: Mutex<VecDeque<SlowOp>>,
    /// Requests at or over this wall-clock (nanos) enter the slow-op
    /// ring; `u64::MAX` disables capture.
    slow_threshold: AtomicU64,
    /// Ordinal of the next observed request.
    next_seq: AtomicU64,
}

/// The attribution recorder: cheap clonable handle, one branch per
/// call site when disabled.
#[derive(Clone)]
pub struct Profiler {
    enabled: bool,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::disabled()
    }
}

impl Profiler {
    /// The permanently no-op profiler.
    pub fn disabled() -> Profiler {
        Profiler {
            enabled: false,
            inner: Arc::new(Inner {
                registry: Arc::new(Registry::disabled()),
                sources: Sources::mint(&Registry::disabled()),
                accounts: Mutex::new(BTreeMap::new()),
                names: Mutex::new(BTreeMap::new()),
                slow: Mutex::new(VecDeque::new()),
                slow_threshold: AtomicU64::new(u64::MAX),
                next_seq: AtomicU64::new(0),
            }),
        }
    }

    /// A profiler accounting into `registry` — the same registry the
    /// engine's telemetry is attached to, so the global counters the
    /// accounts partition live next to the account families. A
    /// disabled registry yields a disabled profiler.
    pub fn new(registry: &Arc<Registry>) -> Profiler {
        if !registry.is_enabled() {
            return Profiler::disabled();
        }
        Profiler {
            enabled: true,
            inner: Arc::new(Inner {
                registry: Arc::clone(registry),
                sources: Sources::mint(registry),
                accounts: Mutex::new(BTreeMap::new()),
                names: Mutex::new(BTreeMap::new()),
                slow: Mutex::new(VecDeque::new()),
                slow_threshold: AtomicU64::new(u64::MAX),
                next_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Does this handle record anything?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The registry the accounts live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// Current values of the global cost-term counters (the
    /// `stab_nanos` field is always 0 — wall-clock has no global
    /// counter; callers time it around the work themselves). Two
    /// snapshots bracket a bounded piece of serial work; their
    /// [`CostSnapshot::delta_since`] is the bill.
    pub fn source_snapshot(&self) -> CostSnapshot {
        if !self.enabled {
            return CostSnapshot::default();
        }
        let s = &self.inner.sources;
        CostSnapshot {
            stab_nanos: 0,
            ibs_nodes: s.ibs_nodes.get(),
            ibs_marks: s.ibs_marks.get(),
            residual_tests: s.residual_tests.get(),
            residual_passes: s.residual_passes.get(),
            non_indexable: s.non_indexable.get(),
            join_probes: s.join_probes.get(),
            join_retractions: s.join_retractions.get(),
            firings: s.firings.get(),
            ops: s.ops.get(),
        }
    }

    /// Resolves (minting on first use) the account of `rule`
    /// (`None` = external).
    fn account(&self, rule: Option<u32>) -> Account {
        let mut accounts = self
            .inner
            .accounts
            .lock()
            // srclint:allow(no-panic-in-lib): a poisoned account map means a holder panicked; propagating is by design
            .expect("profiler accounts poisoned");
        accounts
            .entry(rule)
            .or_insert_with(|| {
                let label = match rule {
                    Some(rid) => rid.to_string(),
                    None => EXTERNAL_ACCOUNT.to_string(),
                };
                Account::mint(&self.inner.registry, &label)
            })
            .clone()
    }

    /// Credits a matching-stage delta (stab nanos + predindex terms)
    /// to `rule`'s account.
    pub fn credit_match(&self, rule: Option<u32>, delta: &CostSnapshot) {
        if !self.enabled {
            return;
        }
        let a = self.account(rule);
        a.stab_nanos.add(delta.stab_nanos);
        a.ibs_nodes.add(delta.ibs_nodes);
        a.ibs_marks.add(delta.ibs_marks);
        a.residual_tests.add(delta.residual_tests);
        a.residual_passes.add(delta.residual_passes);
        a.non_indexable.add(delta.non_indexable);
    }

    /// Credits `n` join-memo probes to the rule *owning* the join
    /// condition.
    pub fn credit_join_probes(&self, rule: u32, n: u64) {
        if self.enabled && n > 0 {
            self.account(Some(rule)).join_probes.add(n);
        }
    }

    /// Credits `n` join-memo retractions to the owning rule.
    pub fn credit_join_retractions(&self, rule: u32, n: u64) {
        if self.enabled && n > 0 {
            self.account(Some(rule)).join_retractions.add(n);
        }
    }

    /// Credits one firing to the fired rule.
    pub fn credit_firing(&self, rule: u32) {
        if self.enabled {
            self.account(Some(rule)).firings.inc();
        }
    }

    /// Credits one processed database operation to the account that
    /// caused the event (`None` = client-injected).
    pub fn credit_op(&self, rule: Option<u32>) {
        if self.enabled {
            self.account(rule).ops.inc();
        }
    }

    /// Registers a display name for rule `rule` (used by `/top` and
    /// the shell ranking).
    pub fn name_rule(&self, rule: u32, name: &str) {
        if !self.enabled {
            return;
        }
        // srclint:allow(no-panic-in-lib): a poisoned name map means a holder panicked; propagating is by design
        let mut names = self.inner.names.lock().expect("profiler names poisoned");
        names.insert(rule, name.to_string());
    }

    /// Snapshot of every account, external first then by rule id.
    pub fn accounts(&self) -> Vec<AccountSnapshot> {
        if !self.enabled {
            return Vec::new();
        }
        let accounts = self
            .inner
            .accounts
            .lock()
            // srclint:allow(no-panic-in-lib): a poisoned account map means a holder panicked; propagating is by design
            .expect("profiler accounts poisoned");
        // srclint:allow(no-panic-in-lib): a poisoned name map means a holder panicked; propagating is by design
        let names = self.inner.names.lock().expect("profiler names poisoned");
        accounts
            .iter()
            .map(|(&rule, a)| AccountSnapshot {
                rule,
                name: rule.and_then(|rid| names.get(&rid).cloned()),
                cost: a.snapshot(),
            })
            .collect()
    }

    /// The `k` most expensive accounts, ranked by stab nanos
    /// descending, then total work units, then account key.
    pub fn top(&self, k: usize) -> Vec<AccountSnapshot> {
        let mut all = self.accounts();
        all.sort_by(|a, b| {
            b.cost
                .stab_nanos
                .cmp(&a.cost.stab_nanos)
                .then(b.cost.work().cmp(&a.cost.work()))
                .then(a.rule.cmp(&b.rule))
        });
        all.truncate(k);
        all
    }

    /// Sets the slow-op capture threshold (`u64::MAX` = off).
    pub fn set_slow_threshold_nanos(&self, nanos: u64) {
        // srclint:allow(atomic-ordering): an independent config word — the threshold guards no other data, so readers need no happens-before edge
        self.inner.slow_threshold.store(nanos, Ordering::Relaxed);
    }

    /// The current slow-op capture threshold.
    pub fn slow_threshold_nanos(&self) -> u64 {
        // srclint:allow(atomic-ordering): an independent config word — see set_slow_threshold_nanos
        self.inner.slow_threshold.load(Ordering::Relaxed)
    }

    /// Observes one completed request: assigns it an ordinal and, if
    /// `nanos` meets the threshold, captures it in the slow-op ring
    /// (evicting the oldest entry at capacity). Returns the ordinal.
    pub fn record_request(
        &self,
        op: &str,
        trace_id: Option<u64>,
        nanos: u64,
        cost: CostSnapshot,
    ) -> u64 {
        if !self.enabled {
            return 0;
        }
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        // srclint:allow(atomic-ordering): an independent config word — see set_slow_threshold_nanos
        if nanos >= self.inner.slow_threshold.load(Ordering::Relaxed) {
            // srclint:allow(no-panic-in-lib): a poisoned slow-op ring means a holder panicked; propagating is by design
            let mut slow = self.inner.slow.lock().expect("slow-op ring poisoned");
            if slow.len() >= SLOW_OP_CAPACITY {
                slow.pop_front();
            }
            slow.push_back(SlowOp {
                seq,
                op: op.to_string(),
                trace_id,
                nanos,
                cost,
            });
        }
        seq
    }

    /// Snapshot of the slow-op ring, oldest first. Never drains.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        if !self.enabled {
            return Vec::new();
        }
        // srclint:allow(no-panic-in-lib): a poisoned slow-op ring means a holder panicked; propagating is by design
        let slow = self.inner.slow.lock().expect("slow-op ring poisoned");
        slow.iter().cloned().collect()
    }

    /// The `/profile` endpoint body: accounts, tail-latency quantiles
    /// of every registered histogram, and the slow-op ring, as one
    /// JSON document (`schema: telemetry/profile-v1`).
    pub fn profile_json(&self, registry: &Registry) -> String {
        let mut out = String::from("{\"schema\":\"telemetry/profile-v1\"");
        let threshold = self.slow_threshold_nanos();
        if threshold == u64::MAX {
            out.push_str(",\"slow_threshold_nanos\":null");
        } else {
            let _ = write!(out, ",\"slow_threshold_nanos\":{threshold}");
        }
        out.push_str(",\"accounts\":[");
        for (i, a) in self.accounts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"rule\":\"{}\",\"name\":", a.label());
            match &a.name {
                Some(n) => {
                    let _ = write!(out, "\"{}\"", escape_json(n));
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"cost\":{}}}", a.cost.json());
        }
        out.push_str("],\"quantiles\":[");
        for (i, (name, count, sum, buckets)) in registry.histogram_snapshots().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{count},\"sum\":{sum},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                escape_json(name),
                quantile(buckets, 0.50),
                quantile(buckets, 0.95),
                quantile(buckets, 0.99),
            );
        }
        out.push_str("],\"slow_ops\":[");
        for (i, s) in self.slow_ops().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"seq\":{},\"op\":\"{}\"", s.seq, escape_json(&s.op));
            match s.trace_id {
                Some(id) => {
                    let _ = write!(out, ",\"trace_id\":{id}");
                }
                None => out.push_str(",\"trace_id\":null"),
            }
            let _ = write!(out, ",\"nanos\":{},\"cost\":{}}}", s.nanos, s.cost.json());
        }
        out.push_str("]}");
        out
    }

    /// The `/top` endpoint body: the `k` most expensive accounts
    /// (`schema: telemetry/top-v1`).
    pub fn top_json(&self, k: usize) -> String {
        let mut out = String::from("{\"schema\":\"telemetry/top-v1\",\"top\":[");
        for (i, a) in self.top(k).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"rule\":\"{}\",\"name\":", a.label());
            match &a.name {
                Some(n) => {
                    let _ = write!(out, "\"{}\"", escape_json(n));
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"work\":{},\"cost\":{}}}",
                a.cost.work(),
                a.cost.json()
            );
        }
        out.push_str("]}");
        out
    }

    /// The shell's `:top` table: one row per account, ranked.
    pub fn render_top_text(&self, k: usize) -> String {
        let top = self.top(k);
        if top.is_empty() {
            return "no accounts (profiler disabled or no work yet)\n".to_string();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<20} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "rule",
            "name",
            "stab_us",
            "nodes",
            "marks",
            "resid",
            "nonidx",
            "probes",
            "fired",
            "ops"
        );
        for a in &top {
            let _ = writeln!(
                out,
                "{:<10} {:<20} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                a.label(),
                a.name.as_deref().unwrap_or("-"),
                a.cost.stab_nanos / 1_000,
                a.cost.ibs_nodes,
                a.cost.ibs_marks,
                a.cost.residual_tests,
                a.cost.non_indexable,
                a.cost.join_probes,
                a.cost.firings,
                a.cost.ops,
            );
        }
        out
    }

    /// The shell's `:slow` table: the slow-op ring, oldest first.
    pub fn render_slow_text(&self) -> String {
        let slow = self.slow_ops();
        let threshold = self.slow_threshold_nanos();
        let mut out = String::new();
        if threshold == u64::MAX {
            out.push_str("slow-op capture off (no threshold set)\n");
        } else {
            let _ = writeln!(out, "slow-op threshold: {} us", threshold / 1_000);
        }
        if slow.is_empty() {
            out.push_str("no slow ops captured\n");
            return out;
        }
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:<18} {:>12} {:>8} {:>8} {:>8}",
            "seq", "op", "trace", "us", "nodes", "resid", "fired"
        );
        for s in &slow {
            let trace = s
                .trace_id
                .map(|id| format!("{id:#x}"))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:<8} {:<12} {:<18} {:>12} {:>8} {:>8} {:>8}",
                s.seq,
                s.op,
                trace,
                s.nanos / 1_000,
                s.cost.ibs_nodes,
                s.cost.residual_tests,
                s.cost.firings,
            );
        }
        out
    }

    /// The flight-dump sections: accounts then slow ops, text form.
    pub fn render_flight(&self) -> String {
        let mut out = String::new();
        out.push_str("== profile (per-rule accounts) ==\n");
        out.push_str(&self.render_top_text(usize::MAX));
        out.push_str("\n== slow ops ==\n");
        out.push_str(&self.render_slow_text());
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Quantile triple of one histogram's buckets — the `/metrics`
/// exposition comment and `/profile` both use this.
pub(crate) fn quantile_line(name: &str, buckets: &[u64; HISTOGRAM_BUCKETS]) -> String {
    format!(
        "# quantiles {name} p50={} p95={} p99={}",
        quantile(buckets, 0.50),
        quantile(buckets, 0.95),
        quantile(buckets, 0.99)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        p.credit_firing(3);
        p.credit_op(None);
        p.credit_match(Some(1), &CostSnapshot::default());
        p.record_request("insert", Some(7), 1_000_000, CostSnapshot::default());
        assert!(p.accounts().is_empty());
        assert!(p.slow_ops().is_empty());
        assert_eq!(p.source_snapshot(), CostSnapshot::default());
        // A disabled registry also yields a disabled profiler.
        assert!(!Profiler::new(&Arc::new(Registry::disabled())).is_enabled());
    }

    #[test]
    fn accounts_partition_into_labelled_families() {
        let registry = Arc::new(Registry::new());
        let p = Profiler::new(&registry);
        p.credit_firing(2);
        p.credit_firing(2);
        p.credit_firing(5);
        p.credit_op(None);
        p.credit_join_probes(5, 7);
        p.name_rule(2, "escalate");
        assert_eq!(
            registry.counter_value("profile_rule_firings_total{rule=\"2\"}"),
            Some(2)
        );
        assert_eq!(
            registry.counter_value("profile_rule_ops_total{rule=\"external\"}"),
            Some(1)
        );
        assert_eq!(
            registry.counter_family_total("profile_rule_firings_total"),
            3
        );
        let accounts = p.accounts();
        assert_eq!(accounts.len(), 3); // external, 2, 5
        assert_eq!(accounts[0].rule, None);
        assert_eq!(accounts[1].name.as_deref(), Some("escalate"));
        assert_eq!(accounts[2].cost.join_probes, 7);
    }

    #[test]
    fn top_ranks_by_stab_then_work() {
        let registry = Arc::new(Registry::new());
        let p = Profiler::new(&registry);
        p.credit_match(
            Some(1),
            &CostSnapshot {
                stab_nanos: 100,
                ..Default::default()
            },
        );
        p.credit_match(
            Some(2),
            &CostSnapshot {
                stab_nanos: 900,
                ..Default::default()
            },
        );
        p.credit_join_probes(3, 50); // no stab time, some work
        let top = p.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].rule, Some(2));
        assert_eq!(top[1].rule, Some(1));
        let all = p.top(10);
        assert_eq!(all[2].rule, Some(3));
    }

    #[test]
    fn slow_ring_is_bounded_and_thresholded() {
        let registry = Arc::new(Registry::new());
        let p = Profiler::new(&registry);
        // Threshold off: nothing captures.
        p.record_request("insert", None, u64::MAX - 1, CostSnapshot::default());
        assert!(p.slow_ops().is_empty());
        p.set_slow_threshold_nanos(1_000);
        p.record_request("insert", None, 999, CostSnapshot::default());
        assert!(p.slow_ops().is_empty());
        for i in 0..(SLOW_OP_CAPACITY + 5) {
            p.record_request("sync", Some(i as u64), 2_000, CostSnapshot::default());
        }
        let slow = p.slow_ops();
        assert_eq!(slow.len(), SLOW_OP_CAPACITY);
        // Oldest evicted: the first surviving capture is #5 of the loop.
        assert_eq!(slow[0].trace_id, Some(5));
        // Ordinals count every observed request (2 fast + the loop).
        assert_eq!(
            slow.last().unwrap().seq,
            2 + (SLOW_OP_CAPACITY as u64 + 5) - 1
        );
    }

    #[test]
    fn profile_json_is_schema_stable() {
        let registry = Arc::new(Registry::new());
        registry.histogram("lat_nanos").record(7);
        let p = Profiler::new(&registry);
        p.credit_firing(1);
        p.name_rule(1, "a \"quoted\" rule");
        p.set_slow_threshold_nanos(10);
        p.record_request("insert", Some(0xdead), 55, CostSnapshot::default());
        let json = p.profile_json(&registry);
        assert!(json.starts_with("{\"schema\":\"telemetry/profile-v1\""));
        assert!(json.contains("\"slow_threshold_nanos\":10"));
        assert!(json.contains("\"rule\":\"1\""));
        assert!(json.contains("a \\\"quoted\\\" rule"));
        assert!(json.contains("\"name\":\"lat_nanos\""));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"trace_id\":57005"));
        let top = p.top_json(5);
        assert!(top.starts_with("{\"schema\":\"telemetry/top-v1\""));
        assert!(top.contains("\"work\":"));
    }

    #[test]
    fn text_renderings_cover_empty_and_filled() {
        let p = Profiler::disabled();
        assert!(p.render_top_text(5).contains("no accounts"));
        assert!(p.render_slow_text().contains("capture off"));
        let registry = Arc::new(Registry::new());
        let p = Profiler::new(&registry);
        p.credit_firing(1);
        p.set_slow_threshold_nanos(1);
        p.record_request("delete", None, 5_000, CostSnapshot::default());
        assert!(p.render_top_text(5).contains("rule"));
        let slow = p.render_slow_text();
        assert!(slow.contains("delete"));
        assert!(p.render_flight().contains("== slow ops =="));
    }
}
