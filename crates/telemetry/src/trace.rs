//! Span tracing: a bounded ring buffer of structured events.
//!
//! Where the metric [`Registry`](crate::Registry) answers "how much
//! work, in total", the [`Tracer`] answers "where did *this second* of
//! time go": begin/end span pairs and instant events, each stamped with
//! monotonic nanoseconds, a span id, the enclosing span's id, a static
//! name, and a small key/value payload. Events land in a fixed-capacity
//! ring — old events are evicted, never reallocated — so the tracer
//! doubles as a flight recorder: the ring always holds the last moments
//! before a crash (see [`crate::FlightRecorder`]).
//!
//! The recorder is chosen at construction, exactly like
//! [`Registry::disabled`](crate::Registry::disabled): a
//! [`Tracer::disabled`] handle costs one predictable branch per
//! would-be span — no clock read, no lock, no id allocation — so span
//! scaffolding can stay compiled into every hot path.
//!
//! Span nesting is tracked per thread: a span begun while another span
//! from the same thread is open becomes its child. Worker threads get
//! their own lanes (and their own `tid` in the export), which is how
//! batch matching fan-out renders as parallel tracks.
//!
//! [`chrome_trace_json`](Tracer::chrome_trace_json) renders the ring in
//! the Chrome trace-event format — load the output in Perfetto
//! (`ui.perfetto.dev`) or `chrome://tracing` to see the cascade.
//!
//! ```
//! use telemetry::Tracer;
//!
//! let tracer = Tracer::new(1024);
//! {
//!     let _outer = tracer.span("cascade");
//!     let _inner = tracer.span("match_level");
//!     tracer.instant("agenda_built");
//! }
//! let events = tracer.events();
//! assert_eq!(events.len(), 5); // 2 begins + 1 instant + 2 ends
//! assert!(tracer.chrome_trace_json().contains("\"traceEvents\""));
//!
//! // Disabled: same call sites, nothing recorded.
//! let off = Tracer::disabled();
//! let _s = off.span("cascade");
//! assert!(off.events().is_empty());
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default event capacity of a [`Tracer`] ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// What kind of moment an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEventKind {
    /// A span opened.
    Begin,
    /// A span closed (matched to its `Begin` by span id).
    End,
    /// A point-in-time marker inside the current span.
    Instant,
}

/// One ring entry.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub kind: SpanEventKind,
    /// Static name — span names are a closed vocabulary, not data.
    pub name: &'static str,
    /// Span id (`Begin`/`End` share it; `Instant` gets its own).
    pub span: u64,
    /// Enclosing span id on the same thread, 0 at top level.
    pub parent: u64,
    /// Monotonic nanoseconds since the tracer was constructed.
    pub nanos: u64,
    /// Small dense thread id (1, 2, ... in first-use order).
    pub tid: u64,
    /// Small key/value payload (only `Begin` and `Instant` carry one).
    pub args: Vec<(&'static str, String)>,
}

/// Fixed-capacity circular buffer.
struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position once the buffer is full.
    head: usize,
    /// Events evicted to make room.
    dropped: u64,
}

impl Ring {
    fn push(&mut self, capacity: usize, ev: TraceEvent) {
        if self.buf.len() < capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % capacity;
            self.dropped += 1;
        }
    }

    /// Oldest-first snapshot.
    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

struct TracerInner {
    epoch: Instant,
    capacity: usize,
    next_span: AtomicU64,
    ring: Mutex<Ring>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Dense per-thread id, assigned on first trace from the thread.
    static THREAD_ID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// The stack of open span ids on this thread (top = current parent).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|&t| t)
}

/// A cheap, clonable handle to one bounded event ring.
///
/// Clones share the ring, so one tracer can be threaded through every
/// layer of the stack and the export sees a single interleaved
/// timeline.
#[derive(Clone)]
pub struct Tracer {
    enabled: bool,
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A live tracer holding the most recent `capacity` events
    /// (clamped to at least 16 so a dump is never content-free).
    pub fn new(capacity: usize) -> Tracer {
        let capacity = capacity.max(16);
        Tracer {
            enabled: true,
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                capacity,
                next_span: AtomicU64::new(1),
                ring: Mutex::new(Ring {
                    buf: Vec::new(),
                    head: 0,
                    dropped: 0,
                }),
            }),
        }
    }

    /// The no-op recorder: every span/instant call is one branch.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                capacity: 0,
                next_span: AtomicU64::new(1),
                ring: Mutex::new(Ring {
                    buf: Vec::new(),
                    head: 0,
                    dropped: 0,
                }),
            }),
        }
    }

    /// Does this handle record anything?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Ring capacity in events (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        // srclint:allow(no-panic-in-lib): a poisoned trace ring means a holder panicked; propagating is by design
        self.inner.ring.lock().expect("trace ring poisoned").dropped
    }

    fn now_nanos(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&self, ev: TraceEvent) {
        self.inner
            .ring
            .lock()
            // srclint:allow(no-panic-in-lib): a poisoned trace ring means a holder panicked; propagating is by design
            .expect("trace ring poisoned")
            .push(self.inner.capacity, ev);
    }

    /// Opens a span; the returned guard records the matching `End` when
    /// dropped. Disabled: a branch and an inert guard.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.span_with(name, Vec::new)
    }

    /// [`span`](Self::span) with a lazily built payload — `args` runs
    /// only when the tracer is enabled, so call sites pay nothing to
    /// describe spans they never record.
    pub fn span_with(
        &self,
        name: &'static str,
        args: impl FnOnce() -> Vec<(&'static str, String)>,
    ) -> Span<'_> {
        if !self.enabled {
            return Span {
                tracer: None,
                id: 0,
            };
        }
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        self.push(TraceEvent {
            kind: SpanEventKind::Begin,
            name,
            span: id,
            parent,
            nanos: self.now_nanos(),
            tid: thread_id(),
            args: args(),
        });
        Span {
            tracer: Some(self),
            id,
        }
    }

    /// Records a point-in-time event inside the current span.
    #[inline]
    pub fn instant(&self, name: &'static str) {
        self.instant_with(name, Vec::new);
    }

    /// [`instant`](Self::instant) with a lazily built payload.
    pub fn instant_with(
        &self,
        name: &'static str,
        args: impl FnOnce() -> Vec<(&'static str, String)>,
    ) {
        if !self.enabled {
            return;
        }
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        self.push(TraceEvent {
            kind: SpanEventKind::Instant,
            name,
            span: id,
            parent,
            nanos: self.now_nanos(),
            tid: thread_id(),
            args: args(),
        });
    }

    /// Oldest-first snapshot of the ring (non-destructive).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .ring
            .lock()
            // srclint:allow(no-panic-in-lib): a poisoned trace ring means a holder panicked; propagating is by design
            .expect("trace ring poisoned")
            .snapshot()
    }

    /// Empties the ring and returns its contents oldest-first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        // srclint:allow(no-panic-in-lib): a poisoned trace ring means a holder panicked; propagating is by design
        let mut ring = self.inner.ring.lock().expect("trace ring poisoned");
        let out = ring.snapshot();
        ring.buf.clear();
        ring.head = 0;
        out
    }

    /// The ring as Chrome trace-event JSON (non-destructive) — load in
    /// Perfetto or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.events())
    }

    /// [`chrome_trace_json`](Self::chrome_trace_json), draining the
    /// ring — the `/trace` endpoint's read-once semantics.
    pub fn drain_chrome_json(&self) -> String {
        chrome_trace_json(&self.drain())
    }
}

/// An open span; records its `End` event on drop.
///
/// Must be dropped on the thread that opened it (RAII scoping
/// guarantees this for ordinary `let` bindings).
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    id: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer else { return };
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own frame; tolerate a foreign top (mis-scoped
            // guard) by searching, so the stack cannot corrupt.
            if s.last() == Some(&self.id) {
                s.pop();
            } else if let Some(i) = s.iter().rposition(|&x| x == self.id) {
                s.remove(i);
            }
            s.last().copied().unwrap_or(0)
        });
        tracer.push(TraceEvent {
            kind: SpanEventKind::End,
            name: "",
            span: self.id,
            parent,
            nanos: tracer.now_nanos(),
            tid: thread_id(),
            args: Vec::new(),
        });
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders events in the Chrome trace-event JSON object format
/// (`{"traceEvents": [...]}`), hand-rolled — the repo builds offline,
/// so no serde. Timestamps are microseconds with nanosecond fractions;
/// span and parent ids ride in `args` so Perfetto's query view can
/// reconstruct the tree explicitly (the implicit B/E stack per `tid`
/// already nests correctly).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match ev.kind {
            SpanEventKind::Begin => "B",
            SpanEventKind::End => "E",
            SpanEventKind::Instant => "i",
        };
        out.push_str("{\"name\":\"");
        json_escape(ev.name, &mut out);
        let _ = write!(
            out,
            "\",\"ph\":\"{ph}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}",
            ev.nanos / 1_000,
            ev.nanos % 1_000,
            ev.tid
        );
        if matches!(ev.kind, SpanEventKind::Instant) {
            out.push_str(",\"s\":\"t\"");
        }
        if !matches!(ev.kind, SpanEventKind::End) {
            let _ = write!(
                out,
                ",\"args\":{{\"span\":{},\"parent\":{}",
                ev.span, ev.parent
            );
            for (k, v) in &ev.args {
                out.push_str(",\"");
                json_escape(k, &mut out);
                out.push_str("\":\"");
                json_escape(v, &mut out);
                out.push('"');
            }
            out.push_str("}}");
        } else {
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_thread_stack() {
        let tracer = Tracer::new(64);
        {
            let _a = tracer.span("outer");
            let _b = tracer.span_with("inner", || vec![("k", "v".to_string())]);
            tracer.instant("tick");
        }
        let events = tracer.events();
        assert_eq!(events.len(), 5);
        let outer = &events[0];
        let inner = &events[1];
        assert_eq!(outer.kind, SpanEventKind::Begin);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.span);
        assert_eq!(inner.args, vec![("k", "v".to_string())]);
        let tick = &events[2];
        assert_eq!(tick.kind, SpanEventKind::Instant);
        assert_eq!(tick.parent, inner.span);
        // LIFO drop order: inner ends before outer.
        assert_eq!(events[3].kind, SpanEventKind::End);
        assert_eq!(events[3].span, inner.span);
        assert_eq!(events[4].span, outer.span);
        assert!(events.windows(2).all(|w| w[0].nanos <= w[1].nanos));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let mut built = false;
        {
            let _s = tracer.span_with("x", || {
                built = true;
                Vec::new()
            });
            tracer.instant("y");
        }
        assert!(!built, "args closure must not run when disabled");
        assert!(tracer.events().is_empty());
        assert_eq!(tracer.dropped(), 0);
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_the_newest() {
        let tracer = Tracer::new(16);
        for _ in 0..40 {
            tracer.instant("e");
        }
        let events = tracer.events();
        assert_eq!(events.len(), 16);
        assert_eq!(tracer.dropped(), 24);
        // The survivors are the 16 most recent instants: strictly
        // increasing span ids ending at the last allocated one.
        let ids: Vec<u64> = events.iter().map(|e| e.span).collect();
        let max = *ids.iter().max().unwrap();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids[0], max - 15);
    }

    #[test]
    fn drain_empties_the_ring() {
        let tracer = Tracer::new(32);
        tracer.instant("a");
        tracer.instant("b");
        let drained = tracer.drain();
        assert_eq!(drained.len(), 2);
        assert!(tracer.events().is_empty());
        tracer.instant("c");
        assert_eq!(tracer.events().len(), 1);
    }

    #[test]
    fn chrome_json_escapes_and_pairs() {
        let tracer = Tracer::new(32);
        {
            let _s = tracer.span_with("fire", || vec![("rule", "say \"hi\"\n".to_string())]);
        }
        let json = tracer.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("say \\\"hi\\\"\\n"));
        assert_eq!(json.matches("\"name\":\"fire\"").count(), 1);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let tracer = Tracer::new(64);
        let root = tracer.span("root");
        let a_id = {
            let a = tracer.span("a");
            a.id
        };
        let b_id = {
            let b = tracer.span("b");
            b.id
        };
        drop(root);
        let events = tracer.events();
        let parent_of = |id: u64| {
            events
                .iter()
                .find(|e| e.span == id && e.kind == SpanEventKind::Begin)
                .unwrap()
                .parent
        };
        assert_eq!(parent_of(a_id), parent_of(b_id));
        assert_ne!(a_id, b_id);
    }
}
