//! Satellite test coverage: histogram bucketing edges and exact
//! concurrent counter sums.

use telemetry::{bucket_index, bucket_upper_bound, Registry, HISTOGRAM_BUCKETS};

#[test]
fn bucket_index_edges() {
    // The value 0 has its own bucket.
    assert_eq!(bucket_index(0), 0);
    // Bucket i >= 1 holds bit-length-i values: [2^(i-1), 2^i - 1].
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    for i in 1..=63usize {
        let lo = 1u64 << (i - 1);
        let hi = (1u64 << i) - 1;
        assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
        assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
    }
    // The top bucket: [2^63, u64::MAX].
    assert_eq!(bucket_index(1u64 << 63), 64);
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(HISTOGRAM_BUCKETS, 65);
}

#[test]
fn bucket_upper_bounds_are_inclusive_and_contiguous() {
    assert_eq!(bucket_upper_bound(0), 0);
    assert_eq!(bucket_upper_bound(1), 1);
    assert_eq!(bucket_upper_bound(2), 3);
    assert_eq!(bucket_upper_bound(64), u64::MAX);
    for i in 0..HISTOGRAM_BUCKETS {
        let ub = bucket_upper_bound(i);
        // Every value at the bound lands in bucket i; the next value
        // (when there is one) lands in bucket i + 1.
        assert_eq!(bucket_index(ub), i);
        if ub < u64::MAX {
            assert_eq!(bucket_index(ub + 1), i + 1);
        }
    }
}

#[test]
fn extreme_values_round_trip_through_a_histogram() {
    let r = Registry::new();
    let h = r.histogram("edge");
    h.record(0);
    h.record(u64::MAX);
    h.record(1);
    assert_eq!(h.count(), 3);
    // Sum saturates arithmetic no further than u64 wrapping; here the
    // exact sum overflows, so only count/buckets are asserted.
    let buckets = h.buckets();
    assert_eq!(buckets[0], 1);
    assert_eq!(buckets[1], 1);
    assert_eq!(buckets[64], 1);
    let text = r.render_text();
    assert!(text.contains(&format!("edge_bucket{{le=\"{}\"}} 3", u64::MAX)));
}

#[test]
fn concurrent_counter_increments_sum_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let r = Registry::new();
    let c = r.counter("hits_total");
    let h = r.histogram("sizes");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let c = c.clone();
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record((t as u64) * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    // Sum of 0..80000 — exact, no lost updates.
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(h.sum(), n * (n - 1) / 2);
    assert_eq!(h.buckets().iter().sum::<u64>(), n);
}

#[test]
fn handles_from_one_registry_share_cells_across_threads() {
    let r = std::sync::Arc::new(Registry::new());
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let r = r.clone();
            scope.spawn(move || {
                // Each thread fetches its own handle by name.
                r.counter("shared_total").add(5);
            });
        }
    });
    assert_eq!(r.counter_value("shared_total"), Some(20));
}
