//! Regression tests for boundary conditions every matcher must survive:
//! tuples shorter than the bound schema, double registration/removal,
//! and matching after the relation is dropped from the catalog.

use predicate::parse_predicate;
use predindex::{
    HashSequentialMatcher, Matcher, PhysicalLockingMatcher, PredicateId, PredicateIndex,
    RTreeMatcher, SequentialMatcher, ShardedPredicateIndex,
};
use relation::{AttrType, Database, Schema, Tuple, Value};

fn emp_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("emp")
            .attr("age", AttrType::Int)
            .attr("salary", AttrType::Int)
            .attr("dept", AttrType::Str)
            .build(),
    )
    .unwrap();
    db
}

fn all_matchers() -> Vec<Box<dyn Matcher>> {
    vec![
        Box::new(PredicateIndex::new()),
        Box::new(ShardedPredicateIndex::new()),
        Box::new(SequentialMatcher::new()),
        Box::new(HashSequentialMatcher::new()),
        Box::new(PhysicalLockingMatcher::new()),
        Box::new(RTreeMatcher::new()),
    ]
}

/// A projected tuple (arity below the schema) must not panic any
/// matcher. Predicates over attributes the tuple carries still match;
/// predicates touching a missing attribute cannot.
#[test]
fn short_arity_tuple_matches_carried_attributes_only() {
    let db = emp_db();
    for mut m in all_matchers() {
        let on_age = m
            .insert(parse_predicate("emp.age > 50").unwrap(), db.catalog())
            .unwrap();
        let on_salary = m
            .insert(parse_predicate("emp.salary < 100").unwrap(), db.catalog())
            .unwrap();
        let on_both = m
            .insert(
                parse_predicate("emp.age > 50 and emp.salary < 100").unwrap(),
                db.catalog(),
            )
            .unwrap();
        let on_dept = m
            .insert(
                parse_predicate(r#"emp.dept = "Shoe""#).unwrap(),
                db.catalog(),
            )
            .unwrap();

        // Only the age column survives the projection.
        let short = Tuple::new(vec![Value::Int(61)]);
        assert_eq!(
            m.match_tuple("emp", &short),
            vec![on_age],
            "{}",
            m.strategy()
        );

        // Empty tuple: nothing can hold.
        let empty = Tuple::new(vec![]);
        assert_eq!(m.match_tuple("emp", &empty), vec![], "{}", m.strategy());

        // Full-arity control: all four still reachable.
        let full = Tuple::new(vec![Value::Int(61), Value::Int(50), Value::str("Shoe")]);
        assert_eq!(
            m.match_tuple("emp", &full),
            vec![on_age, on_salary, on_both, on_dept],
            "{}",
            m.strategy()
        );
    }
}

/// A non-indexable (opaque-function) clause over a missing attribute is
/// the same story: skipped, not a panic.
#[test]
fn short_arity_tuple_with_func_clause() {
    let db = emp_db();
    for mut m in all_matchers() {
        let id = m
            .insert(parse_predicate("isodd(emp.salary)").unwrap(), db.catalog())
            .unwrap();
        let short = Tuple::new(vec![Value::Int(61)]);
        assert_eq!(m.match_tuple("emp", &short), vec![], "{}", m.strategy());
        let full = Tuple::new(vec![Value::Int(61), Value::Int(7), Value::str("d")]);
        assert_eq!(m.match_tuple("emp", &full), vec![id], "{}", m.strategy());
    }
}

/// The same predicate text registered twice yields two independent ids;
/// removing one must leave the twin registered and matching, and
/// removing an already-removed id is `None`, not a panic (exercises the
/// shared-tree / shared-lock bookkeeping under duplicate intervals).
#[test]
fn duplicate_registration_removes_independently() {
    let db = emp_db();
    for mut m in all_matchers() {
        let p = parse_predicate("emp.age > 50").unwrap();
        let first = m.insert(p.clone(), db.catalog()).unwrap();
        let second = m.insert(p, db.catalog()).unwrap();
        assert_ne!(first, second, "{}", m.strategy());

        let t = Tuple::new(vec![Value::Int(61), Value::Int(0), Value::str("d")]);
        assert_eq!(
            m.match_tuple("emp", &t),
            vec![first, second],
            "{}",
            m.strategy()
        );

        assert!(m.remove(first).is_some(), "{}", m.strategy());
        assert_eq!(m.match_tuple("emp", &t), vec![second], "{}", m.strategy());

        // Double-remove of the same id: second call is None.
        assert!(m.remove(first).is_none(), "{}", m.strategy());
        assert_eq!(m.len(), 1, "{}", m.strategy());

        assert!(m.remove(second).is_some(), "{}", m.strategy());
        assert_eq!(m.match_tuple("emp", &t), vec![], "{}", m.strategy());
        assert!(m.is_empty(), "{}", m.strategy());
    }
}

/// Dropping a relation from the catalog after predicates were bound
/// must not disturb the matcher: it bound at registration time and
/// keeps matching against its own state, removal still works, and the
/// relation name can be re-created with a different schema without
/// colliding with the old registrations.
#[test]
fn matching_survives_relation_drop() {
    let mut db = emp_db();
    for mut m in all_matchers() {
        let id = m
            .insert(parse_predicate("emp.age > 50").unwrap(), db.catalog())
            .unwrap();
        db.drop_relation("emp").unwrap();

        let t = Tuple::new(vec![Value::Int(61), Value::Int(0), Value::str("d")]);
        assert_eq!(m.match_tuple("emp", &t), vec![id], "{}", m.strategy());

        // New predicates against the dropped name are rejected...
        assert!(
            m.insert(parse_predicate("emp.age > 9").unwrap(), db.catalog())
                .is_err(),
            "{}",
            m.strategy()
        );
        // ...and the old registration unwinds cleanly.
        assert!(m.remove(id).is_some(), "{}", m.strategy());
        assert_eq!(m.match_tuple("emp", &t), vec![], "{}", m.strategy());

        // Re-create the name with a different shape; matching starts
        // fresh against the new schema.
        db.create_relation(Schema::builder("emp").attr("age", AttrType::Int).build())
            .unwrap();
        let id2 = m
            .insert(parse_predicate("emp.age > 9").unwrap(), db.catalog())
            .unwrap();
        let t = Tuple::new(vec![Value::Int(10)]);
        assert_eq!(m.match_tuple("emp", &t), vec![id2], "{}", m.strategy());
        assert!(m.remove(id2).is_some(), "{}", m.strategy());

        // Restore the 3-attribute schema for the next matcher in the loop.
        db.drop_relation("emp").unwrap();
        db.create_relation(
            Schema::builder("emp")
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .attr("dept", AttrType::Str)
                .build(),
        )
        .unwrap();
    }
}

/// Ids from matchers never collide with foreign ids: removing an id the
/// matcher never issued is always `None`, even when ids were issued.
#[test]
fn foreign_id_removal_is_none() {
    let db = emp_db();
    for mut m in all_matchers() {
        m.insert(parse_predicate("emp.age > 1").unwrap(), db.catalog())
            .unwrap();
        assert!(m.remove(PredicateId(999)).is_none(), "{}", m.strategy());
        assert_eq!(m.len(), 1, "{}", m.strategy());
    }
}
