//! Differential testing across every matching strategy.
//!
//! All five matchers implement the same contract ("determine exactly
//! those P_i's that match t"), so on any predicate set and any tuple
//! they must return identical id sets. Random schemas, random predicate
//! programs (including conjunctions, function clauses, shared
//! attributes, inserts and removals), random tuples.

use interval::{Interval, Lower, Upper};
use predicate::{Clause, FunctionRegistry, Predicate};
use predindex::{
    HashSequentialMatcher, Matcher, PhysicalLockingMatcher, PredicateId, PredicateIndex,
    RTreeMatcher, SequentialMatcher, ShardedPredicateIndex,
};
use proptest::prelude::*;
use relation::{AttrType, Database, Schema, Tuple, Value};

const RELS: [&str; 2] = ["emp", "item"];
const INT_ATTRS: [&str; 3] = ["a", "b", "c"];

fn test_db() -> Database {
    let mut db = Database::new();
    for rel in RELS {
        db.create_relation(
            Schema::builder(rel)
                .attr("a", AttrType::Int)
                .attr("b", AttrType::Int)
                .attr("c", AttrType::Int)
                .attr("tag", AttrType::Str)
                .build(),
        )
        .unwrap();
    }
    db
}

fn arb_value_interval() -> impl Strategy<Value = Interval<Value>> {
    let k = 0i64..50;
    prop_oneof![
        2 => k.clone().prop_map(|v| Interval::point(Value::Int(v))),
        3 => (k.clone(), k.clone(), any::<(bool, bool)>()).prop_filter_map(
            "non-empty",
            |(a, b, (li, hi))| {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                let lo = if li { Lower::Inclusive(Value::Int(a)) } else { Lower::Exclusive(Value::Int(a)) };
                let up = if hi { Upper::Inclusive(Value::Int(b)) } else { Upper::Exclusive(Value::Int(b)) };
                Interval::new(lo, up).ok()
            }
        ),
        1 => k.clone().prop_map(|v| Interval::at_least(Value::Int(v))),
        1 => k.prop_map(|v| Interval::less_than(Value::Int(v))),
    ]
}

fn arb_clause() -> impl Strategy<Value = Clause> {
    prop_oneof![
        6 => (0usize..3, arb_value_interval()).prop_map(|(a, interval)| Clause::Range {
            attr: INT_ATTRS[a].to_string(),
            interval,
        }),
        1 => (0usize..3).prop_map(|a| {
            let reg = FunctionRegistry::default();
            Clause::Func {
                name: "isodd".into(),
                attr: INT_ATTRS[a].to_string(),
                func: reg.get("isodd").expect("builtin"),
            }
        }),
        1 => prop::collection::vec(0u8..26, 1..3).prop_map(|chars| {
            let s: String = chars.iter().map(|c| (b'a' + c) as char).collect();
            Clause::Range {
                attr: "tag".into(),
                interval: Interval::point(Value::str(s)),
            }
        }),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (0usize..2, prop::collection::vec(arb_clause(), 1..4))
        .prop_map(|(r, clauses)| Predicate::new(RELS[r], clauses))
}

fn arb_tuple() -> impl Strategy<Value = (usize, Tuple)> {
    (
        0usize..2,
        0i64..50,
        0i64..50,
        0i64..50,
        prop::collection::vec(0u8..26, 1..3),
    )
        .prop_map(|(r, a, b, c, chars)| {
            let s: String = chars.iter().map(|c| (b'a' + c) as char).collect();
            (
                r,
                Tuple::new(vec![
                    Value::Int(a),
                    Value::Int(b),
                    Value::Int(c),
                    Value::str(s),
                ]),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_strategies_agree(
        preds in prop::collection::vec(arb_predicate(), 1..25),
        removals in prop::collection::vec(0usize..25, 0..8),
        tuples in prop::collection::vec(arb_tuple(), 1..15),
    ) {
        let db = test_db();
        let mut matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(PredicateIndex::new()),
            Box::new(SequentialMatcher::new()),
            Box::new(HashSequentialMatcher::new()),
            Box::new(PhysicalLockingMatcher::new()),
            Box::new(PhysicalLockingMatcher::with_indexed_attrs(
                db.catalog(),
                [("emp", "a"), ("item", "b")],
            )),
            Box::new(RTreeMatcher::new()),
            Box::new(ShardedPredicateIndex::new()),
            Box::new(ShardedPredicateIndex::with_shards(1)),
        ];

        let mut ids: Vec<PredicateId> = Vec::new();
        for p in &preds {
            let mut got: Option<PredicateId> = None;
            for m in matchers.iter_mut() {
                let id = m.insert(p.clone(), db.catalog()).expect("valid predicate");
                match got {
                    None => got = Some(id),
                    Some(prev) => prop_assert_eq!(prev, id, "id assignment must agree"),
                }
            }
            ids.push(got.expect("at least one matcher"));
        }
        for &r in &removals {
            if ids.is_empty() { break; }
            let id = ids.remove(r % ids.len());
            for m in matchers.iter_mut() {
                prop_assert!(m.remove(id).is_some(), "{}", m.strategy());
            }
        }

        for (r, t) in &tuples {
            let expected = matchers[1].match_tuple(RELS[*r], t); // sequential = oracle
            for m in &matchers {
                let got = m.match_tuple(RELS[*r], t);
                prop_assert_eq!(
                    &got, &expected,
                    "strategy {} diverged on {:?}", m.strategy(), t
                );
            }
        }
    }

    /// The concurrent front-end against the paper's index: identical id
    /// assignment, and the batch path (at several worker counts) returns
    /// byte-identical match sets to per-tuple sequential matching.
    #[test]
    fn sharded_batch_matches_sequential_index(
        preds in prop::collection::vec(arb_predicate(), 1..30),
        removals in prop::collection::vec(0usize..30, 0..10),
        tuples in prop::collection::vec(arb_tuple(), 1..40),
        shards in 1usize..9,
    ) {
        let db = test_db();
        let mut seq = PredicateIndex::new();
        let sharded = ShardedPredicateIndex::with_shards(shards);

        let mut ids: Vec<PredicateId> = Vec::new();
        for p in &preds {
            let a = seq.insert(p.clone(), db.catalog()).expect("valid predicate");
            let b = sharded.insert_shared(p.clone(), db.catalog()).expect("valid predicate");
            prop_assert_eq!(a, b, "id assignment must agree");
            ids.push(a);
        }
        for &r in &removals {
            if ids.is_empty() { break; }
            let id = ids.remove(r % ids.len());
            prop_assert!(seq.remove(id).is_some());
            prop_assert!(sharded.remove_shared(id).is_some());
        }

        let batch: Vec<(&str, &Tuple)> =
            tuples.iter().map(|(r, t)| (RELS[*r], t)).collect();
        let expected: Vec<Vec<PredicateId>> = batch
            .iter()
            .map(|(r, t)| seq.match_tuple(r, t))
            .collect();
        for threads in [1usize, 2, 4, 8] {
            prop_assert_eq!(
                &sharded.match_batch_threads(&batch, threads), &expected,
                "batch at {} threads diverged", threads
            );
        }
        prop_assert_eq!(&sharded.match_batch(&batch), &expected);
    }
}
