//! Predicate remove → reinsert churn against the sharded index:
//! id allocation must stay monotone (ids are never recycled) and the
//! structure counters — [`Matcher::len`], `stats().predicates`, and the
//! per-shard sums from `shard_stats()` — must agree with each other and
//! with the live predicate set at every step.

use predicate::parse_predicate;
use predindex::{Matcher, PredicateId, ShardedPredicateIndex};
use relation::{AttrType, Database, Schema, Value};

fn db() -> Database {
    let mut db = Database::new();
    for name in ["emp", "dept", "proj"] {
        db.create_relation(
            Schema::builder(name)
                .attr("a", AttrType::Int)
                .attr("b", AttrType::Int)
                .build(),
        )
        .unwrap();
    }
    db
}

/// All counter views of the index must tell the same story.
fn assert_counters(index: &ShardedPredicateIndex, live: usize) {
    assert_eq!(Matcher::len(index), live);
    assert_eq!(index.stats().predicates, live);
    let shard_sum: usize = index.shard_stats().iter().map(|s| s.predicates).sum();
    assert_eq!(shard_sum, live);
}

#[test]
fn churn_never_reuses_ids_and_keeps_counters_consistent() {
    let mut db = db();
    let index = ShardedPredicateIndex::with_shards(4);
    let rels = ["emp", "dept", "proj"];

    let mut max_seen: Option<u32> = None;
    let mut live: Vec<(PredicateId, String, i64)> = Vec::new();

    // Rounds of insert-heavy churn: add three predicates per round,
    // remove every other live predicate, reinsert one of the removed
    // sources verbatim.
    for round in 0..12i64 {
        for (j, rel) in rels.iter().enumerate() {
            let lo = round * 3 + j as i64;
            let id = index
                .insert_shared(
                    parse_predicate(&format!("{rel}.a > {lo}")).unwrap(),
                    db.catalog(),
                )
                .unwrap();
            // Strictly increasing across the whole history.
            assert!(max_seen.is_none_or(|m| id.0 > m), "id {id:?} reused");
            max_seen = Some(id.0);
            live.push((id, rel.to_string(), lo));
        }
        assert_counters(&index, live.len());

        let mut removed_src = None;
        let mut k = 0;
        live.retain(|(id, rel, lo)| {
            k += 1;
            if k % 2 == 0 {
                assert!(index.remove_shared(*id).is_some());
                removed_src = Some(format!("{rel}.a > {lo}"));
                false
            } else {
                true
            }
        });
        assert_counters(&index, live.len());

        if let Some(src) = removed_src {
            let id = index
                .insert_shared(parse_predicate(&src).unwrap(), db.catalog())
                .unwrap();
            assert!(max_seen.is_none_or(|m| id.0 > m), "id {id:?} reused");
            max_seen = Some(id.0);
            let p = parse_predicate(&src).unwrap();
            live.push((id, p.relation().to_string(), 0));
            // Re-derive the bound from the source for matching checks.
            let lo: i64 = src.rsplit(' ').next().unwrap().parse().unwrap();
            live.last_mut().unwrap().2 = lo;
        }
        assert_counters(&index, live.len());
    }

    // Matching reflects exactly the live set, not churn history.
    for probe in [-1i64, 0, 5, 17, 40] {
        for rel in rels {
            let t = db
                .insert(rel, vec![Value::Int(probe), Value::Int(0)])
                .unwrap();
            let mut got = index.match_tuple(rel, &t);
            got.sort_by_key(|id| id.0);
            let mut want: Vec<PredicateId> = live
                .iter()
                .filter(|(_, r, lo)| r == rel && probe > *lo)
                .map(|(id, _, _)| *id)
                .collect();
            want.sort_by_key(|id| id.0);
            assert_eq!(got, want, "wrong matches for {rel}.a = {probe}");
        }
    }

    // Remove everything: the index must report fully empty again.
    for (id, _, _) in live.drain(..) {
        assert!(index.remove_shared(id).is_some());
        // Double-remove is a no-op.
        assert!(index.remove_shared(id).is_none());
    }
    assert_counters(&index, 0);
    assert!(Matcher::is_empty(&index));

    // And the index is still usable after total churn, with ids still
    // monotonically increasing past everything ever allocated.
    let id = index
        .insert_shared(parse_predicate("emp.a > 0").unwrap(), db.catalog())
        .unwrap();
    assert!(id.0 > max_seen.unwrap());
    let t = db
        .insert("emp", vec![Value::Int(1), Value::Int(0)])
        .unwrap();
    assert_eq!(index.match_tuple("emp", &t), vec![id]);
}
