//! # Predicate matching (the paper's §4 scheme and §2 baselines)
//!
//! [`PredicateIndex`] is the contribution: hash on relation name, one
//! IBS-tree per attribute with indexable clauses, a non-indexable list,
//! and the `PREDICATES` residual test (Figure 1).
//! [`ShardedPredicateIndex`] is the concurrent front-end over the same
//! structure: state partitioned by relation name behind per-shard
//! reader–writer locks, with batch matching fanned out across scoped
//! threads. The [`baselines`] module holds the four strategies §2
//! reviews — sequential search, OPS5-style hash + sequential, simulated
//! physical locking, and R-tree multi-dimensional indexing — all behind
//! the same [`Matcher`] trait so they can be swapped,
//! differential-tested, and benchmarked.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod advisor;
pub mod baselines;
mod index;
mod matcher;
mod memory;
mod metrics;
mod sharded;
mod stats;

pub use advisor::{Advisor, AdvisorConstants, Backend, BackendProjection, Recommendation};
pub use baselines::{
    HashSequentialMatcher, PhysicalLockingMatcher, RTreeMatcher, SequentialMatcher,
};
pub use index::PredicateIndex;
pub use matcher::{IndexError, Matcher, PredicateId, PredicateStore, StoredPredicate};
pub use memory::MatchMemory;
pub use metrics::IndexMetrics;
pub use sharded::{ShardedPredicateIndex, DEFAULT_SHARDS};
pub use stats::{IndexStats, RelationStats, ShardStats, TreeStats};
// Re-exported so downstream layers can speak the EXPLAIN and tracing
// types without depending on `telemetry` directly.
pub use telemetry::{MatchTrace, ResidualTrace, StabTrace, Tracer};

#[cfg(test)]
mod tests {
    use super::*;
    use predicate::{parse_predicate, parse_predicates};
    use relation::{AttrType, Database, Schema, Value};

    fn emp_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .attr("dept", AttrType::Str)
                .build(),
        )
        .unwrap();
        db.create_relation(
            Schema::builder("dept")
                .attr("dname", AttrType::Str)
                .attr("budget", AttrType::Int)
                .build(),
        )
        .unwrap();
        db
    }

    fn emp_tuple(
        db: &mut Database,
        name: &str,
        age: i64,
        salary: i64,
        dept: &str,
    ) -> relation::Tuple {
        db.insert(
            "emp",
            vec![
                Value::str(name),
                Value::Int(age),
                Value::Int(salary),
                Value::str(dept),
            ],
        )
        .unwrap()
    }

    fn all_matchers() -> Vec<Box<dyn Matcher>> {
        vec![
            Box::new(PredicateIndex::new()),
            Box::new(SequentialMatcher::new()),
            Box::new(HashSequentialMatcher::new()),
            Box::new(PhysicalLockingMatcher::new()),
            Box::new(RTreeMatcher::new()),
        ]
    }

    #[test]
    fn paper_intro_predicates_all_matchers() {
        let mut db = emp_db();
        for mut m in all_matchers() {
            let p1 = parse_predicate("emp.salary < 20000 and emp.age > 50").unwrap();
            let p2 = parse_predicate("20000 <= emp.salary <= 30000").unwrap();
            let p3 = parse_predicate(r#"emp.dept = "Salesperson""#).unwrap();
            let p4 = parse_predicate(r#"isodd(emp.age) and emp.dept = "Shoe""#).unwrap();
            let id1 = m.insert(p1, db.catalog()).unwrap();
            let id2 = m.insert(p2, db.catalog()).unwrap();
            let id3 = m.insert(p3, db.catalog()).unwrap();
            let id4 = m.insert(p4, db.catalog()).unwrap();

            let t = emp_tuple(&mut db, "al", 61, 12_000, "Shoe");
            assert_eq!(m.match_tuple("emp", &t), vec![id1, id4], "{}", m.strategy());

            let t = emp_tuple(&mut db, "bo", 30, 25_000, "Salesperson");
            assert_eq!(m.match_tuple("emp", &t), vec![id2, id3], "{}", m.strategy());

            let t = emp_tuple(&mut db, "cy", 40, 99_000, "Hat");
            assert_eq!(m.match_tuple("emp", &t), vec![], "{}", m.strategy());

            assert_eq!(m.len(), 4);
            assert!(m.remove(id1).is_some());
            let t = emp_tuple(&mut db, "dee", 61, 12_000, "Shoe");
            assert_eq!(m.match_tuple("emp", &t), vec![id4], "{}", m.strategy());
            assert_eq!(m.len(), 3);
        }
    }

    #[test]
    fn relations_are_separated() {
        let mut db = emp_db();
        for mut m in all_matchers() {
            let e = m
                .insert(parse_predicate("emp.age > 0").unwrap(), db.catalog())
                .unwrap();
            let d = m
                .insert(parse_predicate("dept.budget > 0").unwrap(), db.catalog())
                .unwrap();
            let t = emp_tuple(&mut db, "x", 10, 10, "d");
            assert_eq!(m.match_tuple("emp", &t), vec![e], "{}", m.strategy());
            let td = db
                .insert("dept", vec![Value::str("toys"), Value::Int(100)])
                .unwrap();
            assert_eq!(m.match_tuple("dept", &td), vec![d], "{}", m.strategy());
        }
    }

    #[test]
    fn unknown_relation_is_error() {
        let db = emp_db();
        for mut m in all_matchers() {
            let err = m
                .insert(parse_predicate("ghost.x = 1").unwrap(), db.catalog())
                .unwrap_err();
            assert!(
                matches!(err, IndexError::NoSuchRelation(_)),
                "{}",
                m.strategy()
            );
        }
    }

    #[test]
    fn unsatisfiable_predicates_never_match() {
        let mut db = emp_db();
        for mut m in all_matchers() {
            let id = m
                .insert(
                    parse_predicate("emp.age < 10 and emp.age > 20").unwrap(),
                    db.catalog(),
                )
                .unwrap();
            let t = emp_tuple(&mut db, "x", 15, 0, "d");
            assert_eq!(m.match_tuple("emp", &t), vec![], "{}", m.strategy());
            assert!(m.remove(id).is_some(), "{}", m.strategy());
            assert!(m.is_empty(), "{}", m.strategy());
        }
    }

    #[test]
    fn disjunction_via_multiple_predicates() {
        let mut db = emp_db();
        let mut m = PredicateIndex::new();
        let ids: Vec<PredicateId> = parse_predicates("emp.age < 20 or emp.age > 60")
            .unwrap()
            .into_iter()
            .map(|p| m.insert(p, db.catalog()).unwrap())
            .collect();
        let t = emp_tuple(&mut db, "y", 70, 0, "d");
        assert_eq!(m.match_tuple("emp", &t), vec![ids[1]]);
        let t = emp_tuple(&mut db, "y", 40, 0, "d");
        assert_eq!(m.match_tuple("emp", &t), vec![]);
    }

    #[test]
    fn index_uses_most_selective_clause() {
        // With stats: age = 30 (selectivity 1/50) should be chosen over
        // salary > 0 (near 1.0), so the salary tree is never built.
        let mut db = emp_db();
        for i in 0..500i64 {
            emp_tuple(&mut db, "e", 20 + (i % 50), (i * 37) % 10_000, "d");
        }
        db.catalog_mut().analyze();
        let mut m = PredicateIndex::new();
        m.insert(
            parse_predicate("emp.age = 30 and emp.salary > 0").unwrap(),
            db.catalog(),
        )
        .unwrap();
        assert_eq!(m.attribute_tree_count(), 1);
    }

    #[test]
    fn non_indexable_predicates_still_match() {
        let mut db = emp_db();
        let mut m = PredicateIndex::new();
        let id = m
            .insert(parse_predicate("isodd(emp.age)").unwrap(), db.catalog())
            .unwrap();
        assert_eq!(m.attribute_tree_count(), 0);
        let t = emp_tuple(&mut db, "z", 31, 0, "d");
        assert_eq!(m.match_tuple("emp", &t), vec![id]);
        let t = emp_tuple(&mut db, "z", 32, 0, "d");
        assert_eq!(m.match_tuple("emp", &t), vec![]);
        m.remove(id).unwrap();
        let t = emp_tuple(&mut db, "z", 31, 0, "d");
        assert_eq!(m.match_tuple("emp", &t), vec![]);
    }

    #[test]
    fn locking_escalates_without_indexes() {
        let mut db = emp_db();
        // No indexed attributes at all: every predicate takes a
        // relation-level lock (the degenerate case).
        let mut m = PhysicalLockingMatcher::new();
        for src in ["emp.age > 30", "emp.salary < 500", r#"emp.dept = "Shoe""#] {
            m.insert(parse_predicate(src).unwrap(), db.catalog())
                .unwrap();
        }
        assert_eq!(m.relation_lock_count(), 3);

        // With an index on age, the age predicate gets an interval lock.
        let mut m = PhysicalLockingMatcher::with_indexed_attrs(db.catalog(), [("emp", "age")]);
        for src in ["emp.age > 30", "emp.salary < 500"] {
            m.insert(parse_predicate(src).unwrap(), db.catalog())
                .unwrap();
        }
        assert_eq!(m.relation_lock_count(), 1);
        let t = emp_tuple(&mut db, "w", 40, 100, "d");
        assert_eq!(m.match_tuple("emp", &t).len(), 2);
    }

    #[test]
    fn empty_matchers_match_nothing() {
        let mut db = emp_db();
        let t = emp_tuple(&mut db, "q", 1, 1, "d");
        for m in all_matchers() {
            assert_eq!(m.match_tuple("emp", &t), vec![], "{}", m.strategy());
            assert!(m.is_empty());
        }
    }

    #[test]
    fn removing_unknown_id_is_none() {
        for mut m in all_matchers() {
            assert!(m.remove(PredicateId(42)).is_none(), "{}", m.strategy());
        }
    }
}
