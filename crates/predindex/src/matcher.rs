//! The common interface all predicate-matching strategies implement,
//! plus the shared predicate store (the paper's `PREDICATES` table).

use predicate::{BindError, BoundPredicate, Predicate};
use relation::{Catalog, Tuple};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a registered predicate. The same id doubles as the
/// interval id inside whichever index structure holds the predicate's
/// indexed clause.
pub use interval::IntervalId as PredicateId;

/// Errors from predicate registration.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// The predicate's relation is not in the catalog.
    NoSuchRelation(String),
    /// Attribute resolution / typing failed.
    Bind(BindError),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::NoSuchRelation(r) => write!(f, "no relation named {r:?}"),
            IndexError::Bind(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<BindError> for IndexError {
    fn from(e: BindError) -> Self {
        IndexError::Bind(e)
    }
}

/// One strategy for the paper's predicate testing problem: "given the
/// collection of predicates ... and a tuple t, determine exactly those
/// P_i's that match t".
pub trait Matcher {
    /// Registers a predicate; binding happens against `catalog`.
    fn insert(&mut self, pred: Predicate, catalog: &Catalog) -> Result<PredicateId, IndexError>;

    /// Unregisters a predicate, returning its source form.
    fn remove(&mut self, id: PredicateId) -> Option<Predicate>;

    /// Exactly the registered predicates matching `tuple` (which belongs
    /// to `relation`), as sorted ids.
    fn match_tuple(&self, relation: &str, tuple: &Tuple) -> Vec<PredicateId>;

    /// Number of registered predicates.
    fn len(&self) -> usize;

    /// Is the matcher empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable strategy name (for benches and reports).
    fn strategy(&self) -> &'static str;
}

/// A registered predicate: source form plus bound (evaluable) form.
#[derive(Debug, Clone)]
pub struct StoredPredicate {
    pub source: Predicate,
    pub bound: BoundPredicate,
}

impl StoredPredicate {
    /// Binds `pred` against the catalog without storing it anywhere.
    /// Matchers that allocate ids themselves (e.g. the sharded index,
    /// which draws from an atomic counter only after binding succeeds)
    /// bind first, then [`PredicateStore::insert_bound`].
    pub fn bind(pred: Predicate, catalog: &Catalog) -> Result<StoredPredicate, IndexError> {
        let rel = catalog
            .relation(pred.relation())
            .ok_or_else(|| IndexError::NoSuchRelation(pred.relation().to_string()))?;
        let bound = pred.bind(rel.schema())?;
        Ok(StoredPredicate {
            source: pred,
            bound,
        })
    }
}

/// The `PREDICATES` side table shared by every matcher implementation:
/// "a main-memory table called PREDICATES that holds the predicates.
/// When a partial match between a tuple t and a predicate P is found, P
/// is retrieved from PREDICATES and tested against t" (§4).
#[derive(Debug, Clone, Default)]
pub struct PredicateStore {
    preds: HashMap<u32, StoredPredicate>,
    next: u32,
}

impl PredicateStore {
    /// An empty store.
    pub fn new() -> Self {
        PredicateStore::default()
    }

    /// Binds and stores a predicate, assigning the next id.
    pub fn register(
        &mut self,
        pred: Predicate,
        catalog: &Catalog,
    ) -> Result<(PredicateId, &StoredPredicate), IndexError> {
        let stored = StoredPredicate::bind(pred, catalog)?;
        let id = PredicateId(self.next);
        self.next += 1;
        self.preds.insert(id.0, stored);
        Ok((id, &self.preds[&id.0]))
    }

    /// Stores an already-bound predicate under a caller-assigned id.
    /// Used by matchers that partition one logical store across several
    /// physical ones but still hand out globally unique ids.
    pub fn insert_bound(&mut self, id: PredicateId, stored: StoredPredicate) -> &StoredPredicate {
        self.preds.insert(id.0, stored);
        &self.preds[&id.0]
    }

    /// Removes a stored predicate.
    pub fn unregister(&mut self, id: PredicateId) -> Option<StoredPredicate> {
        self.preds.remove(&id.0)
    }

    /// Looks up a stored predicate.
    pub fn get(&self, id: PredicateId) -> Option<&StoredPredicate> {
        self.preds.get(&id.0)
    }

    /// The residual test: does the full conjunction hold?
    pub fn full_match(&self, id: PredicateId, tuple: &Tuple) -> bool {
        self.preds
            .get(&id.0)
            .is_some_and(|p| p.bound.matches(tuple))
    }

    /// Number of stored predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Iterates `(id, stored)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PredicateId, &StoredPredicate)> {
        self.preds.iter().map(|(&id, p)| (PredicateId(id), p))
    }
}
