//! A concurrent, batch-capable front-end over the paper's predicate
//! index.
//!
//! [`ShardedPredicateIndex`] partitions the Figure 1 structure by the
//! same key the paper hashes on — the relation name. Each shard owns a
//! disjoint set of relations: their [`RelationIndex`]es (per-attribute
//! IBS-trees + non-indexable list) and the slice of the `PREDICATES`
//! store for predicates over those relations, all behind one
//! [`RwLock`]. The matching path takes only read locks, so any number
//! of tuples can be matched concurrently — including against the *same*
//! relation, since an `RwLock` admits parallel readers. Registration
//! and removal write-lock exactly one shard, so predicate churn on one
//! relation never blocks matching on another.
//!
//! Ids are drawn from a process-wide atomic counter *after* binding
//! succeeds, which keeps the assignment sequence identical to
//! [`PredicateIndex`](crate::PredicateIndex) under single-threaded use —
//! the differential tests rely on that.
//!
//! [`match_batch`](ShardedPredicateIndex::match_batch) fans a slice of
//! `(relation, tuple)` pairs out across scoped worker threads. Each
//! worker takes a contiguous chunk of the batch (so results land in
//! caller order with no scatter step), sorts its chunk by shard, and
//! holds each shard's read lock across the whole run of tuples headed
//! there — one lock acquisition per shard per worker, not per tuple.

use crate::index::{
    clause_shape_of, explain_match, interval_length_of, match_into_metered, place, Location,
    Placement, RelationIndex,
};
use crate::matcher::{IndexError, Matcher, PredicateId, PredicateStore, StoredPredicate};
use crate::metrics::IndexMetrics;
use ibs::BalanceMode;
use predicate::Predicate;
use relation::fx::FnvHashMap;
use relation::{Catalog, Tuple};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, RwLock};
use telemetry::{MatchTrace, Registry, Tracer, WorkloadStats};

/// Default shard count; rounded up to a power of two internally.
pub const DEFAULT_SHARDS: usize = 16;

/// One shard: a disjoint set of relations plus the predicates bound to
/// them. The three maps mirror `PredicateIndex`'s fields exactly.
#[derive(Debug, Default)]
struct Shard {
    relations: FnvHashMap<String, RelationIndex>,
    store: PredicateStore,
    locations: FnvHashMap<u32, (String, Location)>,
}

impl Shard {
    /// The sequential `match_tuple_into`, scoped to this shard.
    fn match_into(
        &self,
        relation: &str,
        tuple: &Tuple,
        out: &mut Vec<PredicateId>,
        metrics: &IndexMetrics,
        workload: &WorkloadStats,
    ) {
        match_into_metered(
            &self.relations,
            &self.store,
            metrics,
            workload,
            relation,
            tuple,
            out,
        );
    }

    fn insert_bound(
        &mut self,
        id: PredicateId,
        stored: StoredPredicate,
        catalog: &Catalog,
        mode: BalanceMode,
        workload: &WorkloadStats,
    ) {
        let relation = stored.bound.relation().to_string();
        let placement = place(catalog, &stored);
        self.store.insert_bound(id, stored);
        let location = match placement {
            Placement::Unsatisfiable => Location::Unsatisfiable,
            Placement::Tree { attr, interval } => {
                if workload.is_enabled() {
                    workload.record_insert(
                        &relation,
                        attr,
                        clause_shape_of(&interval),
                        interval_length_of(&interval),
                    );
                }
                let ri = self.relations.entry(relation.clone()).or_default();
                ri.ensure_tuple_recorder(&relation, workload);
                ri.insert_tree(&relation, attr, id, interval, mode, workload);
                Location::Tree { attr }
            }
            Placement::NonIndexable => {
                workload.record_non_indexable_insert(&relation);
                let ri = self.relations.entry(relation.clone()).or_default();
                ri.ensure_tuple_recorder(&relation, workload);
                ri.push_non_indexable(id);
                Location::NonIndexable
            }
        };
        self.locations.insert(id.0, (relation, location));
    }

    fn remove(&mut self, id: PredicateId, workload: &WorkloadStats) -> Option<Predicate> {
        let stored = self.store.unregister(id)?;
        let (relation, location) = self
            .locations
            .remove(&id.0)
            // srclint:allow(no-panic-in-lib): store and locations are updated together under one shard guard; divergence is an index-corruption bug
            .expect("stored predicate must have a location");
        match location {
            Location::Tree { attr } => {
                let interval = self
                    .relations
                    .get_mut(&relation)
                    // srclint:allow(no-panic-in-lib): a Tree location implies the relation entry exists; see insert_bound
                    .expect("indexed relation exists")
                    .remove_tree(attr, id);
                if workload.is_enabled() {
                    workload.record_delete(&relation, attr, clause_shape_of(&interval));
                }
            }
            Location::NonIndexable => {
                self.relations
                    .get_mut(&relation)
                    // srclint:allow(no-panic-in-lib): a NonIndexable location implies the relation entry exists; see insert_bound
                    .expect("indexed relation exists")
                    .remove_non_indexable(id);
                workload.record_non_indexable_delete(&relation);
            }
            Location::Unsatisfiable => {}
        }
        Some(stored.source)
    }
}

/// FNV-1a over the relation name — the same function the per-shard maps
/// key with, reused as the shard selector (the Figure 1 hash step).
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A sharded, thread-safe [`PredicateIndex`](crate::PredicateIndex)
/// front-end. Semantically identical to the sequential index — same
/// placement logic, same residual test, same id sequence — but state is
/// partitioned by relation name behind per-shard reader–writer locks,
/// and batches of tuples can be matched on several threads at once.
///
/// ```
/// use predindex::{Matcher, ShardedPredicateIndex};
/// use predicate::parse_predicate;
/// use relation::{AttrType, Database, Schema, Value};
///
/// let mut db = Database::new();
/// db.create_relation(
///     Schema::builder("emp").attr("age", AttrType::Int).build(),
/// )
/// .unwrap();
///
/// let index = ShardedPredicateIndex::new();
/// let id = index
///     .insert_shared(parse_predicate("emp.age > 50").unwrap(), db.catalog())
///     .unwrap();
///
/// let old = db.insert("emp", vec![Value::Int(61)]).unwrap();
/// let young = db.insert("emp", vec![Value::Int(30)]).unwrap();
/// let batch = [("emp", &old), ("emp", &young)];
/// assert_eq!(index.match_batch(&batch), vec![vec![id], vec![]]);
/// ```
#[derive(Debug)]
pub struct ShardedPredicateIndex {
    shards: Box<[RwLock<Shard>]>,
    /// Power-of-two mask selecting a shard from the relation-name hash.
    mask: usize,
    next_id: AtomicU32,
    mode: BalanceMode,
    /// Disabled by default; swapped by [`attach_registry`]
    /// (holds one lock-wait counter per shard).
    ///
    /// [`attach_registry`]: ShardedPredicateIndex::attach_registry
    metrics: Arc<IndexMetrics>,
    /// Per-relation+attribute workload accounts; disabled by default,
    /// swapped by [`attach_workload`](ShardedPredicateIndex::attach_workload).
    workload: WorkloadStats,
}

impl Default for ShardedPredicateIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedPredicateIndex {
    /// [`DEFAULT_SHARDS`] shards of AVL-balanced IBS-trees.
    pub fn new() -> Self {
        Self::with_shards_and_mode(DEFAULT_SHARDS, BalanceMode::Avl)
    }

    /// Default shard count with explicit tree balancing.
    pub fn with_mode(mode: BalanceMode) -> Self {
        Self::with_shards_and_mode(DEFAULT_SHARDS, mode)
    }

    /// Explicit shard count (rounded up to a power of two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_mode(shards, BalanceMode::Avl)
    }

    /// Explicit shard count and tree balancing.
    pub fn with_shards_and_mode(shards: usize, mode: BalanceMode) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedPredicateIndex {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            mask: n - 1,
            next_id: AtomicU32::new(0),
            mode,
            metrics: IndexMetrics::disabled(),
            workload: WorkloadStats::disabled(),
        }
    }

    /// Starts recording match-path and lock-wait metrics into
    /// `registry`; per-shard lock-wait counters are minted for every
    /// shard. Until this is called the index runs with the no-op
    /// bundle: one branch per would-be recording site.
    pub fn attach_registry(&mut self, registry: &Arc<Registry>) {
        self.metrics = IndexMetrics::from_registry(registry, self.shards.len());
    }

    /// [`attach_registry`](Self::attach_registry) plus a span tracer:
    /// lock acquisitions emit `shard_lock` spans and the match path
    /// emits `predindex_stab`/`predindex_residual` spans into
    /// `tracer`'s ring.
    pub fn attach_telemetry(&mut self, registry: &Arc<Registry>, tracer: Tracer) {
        self.metrics = IndexMetrics::from_parts(registry, self.shards.len(), tracer);
    }

    /// Starts recording per-relation+attribute workload accounts (op
    /// mix, clause shapes, stab selectivity) into `workload` — the
    /// observation feed for [`crate::advisor`]. Until this is called
    /// the index runs with the no-op handle: one branch per site.
    pub fn attach_workload(&mut self, workload: WorkloadStats) {
        for sid in 0..self.shards.len() {
            let mut guard = self.lock_write(sid);
            for (relation, ri) in guard.relations.iter_mut() {
                // srclint:allow(lock-order): name resolution over-approximates this call to include the enclosing fn; RelationIndex::attach_workload takes no shard lock
                ri.attach_workload(relation, &workload);
            }
        }
        self.workload = workload;
    }

    /// The attached workload-account handle (disabled by default).
    pub fn workload(&self) -> &WorkloadStats {
        &self.workload
    }

    /// Span-wrapped shard-lock acquisition: times the wait for the
    /// lock-wait histogram and brackets it with a `shard_lock` span.
    fn lock_read(&self, sid: usize) -> std::sync::RwLockReadGuard<'_, Shard> {
        let wait = self.metrics.lock_timer();
        let guard = {
            let _span = self
                .metrics
                .tracer()
                .span_with("shard_lock", || vec![("shard", sid.to_string())]);
            // srclint:allow(no-panic-in-lib): a poisoned shard lock means a writer panicked mid-update; propagating is the designed behaviour
            self.shards[sid].read().expect("shard lock poisoned")
        };
        self.metrics.record_lock_wait(sid, wait);
        guard
    }

    /// [`lock_read`](Self::lock_read) for writers.
    fn lock_write(&self, sid: usize) -> std::sync::RwLockWriteGuard<'_, Shard> {
        let wait = self.metrics.lock_timer();
        let guard = {
            let _span = self
                .metrics
                .tracer()
                .span_with("shard_lock", || vec![("shard", sid.to_string())]);
            // srclint:allow(no-panic-in-lib): a poisoned shard lock means a writer panicked mid-update; propagating is the designed behaviour
            self.shards[sid].write().expect("shard lock poisoned")
        };
        self.metrics.record_lock_wait(sid, wait);
        guard
    }

    /// The Figure 1 EXPLAIN: the exact path `tuple` takes through the
    /// owning shard, with per-stage work counts and every residual-test
    /// outcome. Takes the shard's read lock like a normal match.
    pub fn explain_tuple(&self, relation: &str, tuple: &Tuple) -> MatchTrace {
        let sid = self.shard_of(relation);
        let shard = self.lock_read(sid);
        let mut trace = explain_match(&shard.relations, &shard.store, relation, tuple);
        trace.shard = Some(sid);
        trace
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, relation: &str) -> usize {
        fnv1a(relation) as usize & self.mask
    }

    /// Registers a predicate through a shared reference: binds against
    /// the catalog, draws a fresh id, and write-locks only the owning
    /// shard. Safe to call concurrently with matching and with inserts
    /// on other relations.
    pub fn insert_shared(
        &self,
        pred: Predicate,
        catalog: &Catalog,
    ) -> Result<PredicateId, IndexError> {
        let stored = StoredPredicate::bind(pred, catalog)?;
        let sid = self.shard_of(stored.bound.relation());
        let mut shard = self.lock_write(sid);
        // Allocate under the shard lock so the single-threaded id
        // sequence is exactly PredicateIndex's (0, 1, 2, ...).
        let id = PredicateId(self.next_id.fetch_add(1, Ordering::Relaxed));
        shard.insert_bound(id, stored, catalog, self.mode, &self.workload);
        Ok(id)
    }

    /// Registers a batch of predicates, drawing one contiguous id block
    /// — the recovery bulk-load path. All predicates are bound first;
    /// any bind failure aborts the whole batch with nothing inserted and
    /// the id counter untouched, so a fresh index always hands out the
    /// same ids [`insert_shared`](Self::insert_shared) would have one at
    /// a time. Insertions are grouped so each owning shard is
    /// write-locked exactly once. Returns ids in input order.
    pub fn insert_many(
        &self,
        preds: Vec<Predicate>,
        catalog: &Catalog,
    ) -> Result<Vec<PredicateId>, IndexError> {
        let mut bound = Vec::with_capacity(preds.len());
        for pred in preds {
            bound.push(StoredPredicate::bind(pred, catalog)?);
        }
        let n = bound.len() as u32;
        let base = self.next_id.fetch_add(n, Ordering::Relaxed);
        let mut by_shard: Vec<Vec<(PredicateId, StoredPredicate)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, stored) in bound.into_iter().enumerate() {
            let sid = self.shard_of(stored.bound.relation());
            by_shard[sid].push((PredicateId(base + i as u32), stored));
        }
        for (sid, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut shard = self.lock_write(sid);
            for (id, stored) in group {
                shard.insert_bound(id, stored, catalog, self.mode, &self.workload);
            }
        }
        Ok((0..n).map(|i| PredicateId(base + i)).collect())
    }

    /// Unregisters a predicate through a shared reference. The owning
    /// shard is found by probing with read locks; only that shard is
    /// write-locked.
    pub fn remove_shared(&self, id: PredicateId) -> Option<Predicate> {
        for sid in 0..self.shards.len() {
            let owns = self.lock_read(sid).locations.contains_key(&id.0);
            if owns {
                // Re-probe under the write lock: a concurrent remover
                // may have won the race between the two acquisitions.
                // srclint:allow(lock-discipline, lock-order): guards are strictly sequential — the probe's read guard is dropped before the write lock is taken
                if let Some(p) = self.lock_write(sid).remove(id, &self.workload) {
                    return Some(p);
                }
            }
        }
        None
    }

    /// Matching ids appended into a caller-owned buffer (hot path).
    /// Takes a single shard's read lock; never blocks other readers.
    pub fn match_tuple_into(&self, relation: &str, tuple: &Tuple, out: &mut Vec<PredicateId>) {
        let sid = self.shard_of(relation);
        let shard = self.lock_read(sid);
        shard.match_into(relation, tuple, out, &self.metrics, &self.workload);
    }

    /// Matches every `(relation, tuple)` pair, fanning out across up to
    /// [`std::thread::available_parallelism`] scoped threads. Result `i`
    /// is exactly `self.match_tuple(batch[i].0, batch[i].1)`.
    pub fn match_batch(&self, batch: &[(&str, &Tuple)]) -> Vec<Vec<PredicateId>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.match_batch_threads(batch, threads)
    }

    /// [`match_batch`](Self::match_batch) with an explicit worker count
    /// (the bench ablation's knob). `threads <= 1` matches inline on the
    /// calling thread, still batching lock acquisitions per shard.
    pub fn match_batch_threads(
        &self,
        batch: &[(&str, &Tuple)],
        threads: usize,
    ) -> Vec<Vec<PredicateId>> {
        let mut out: Vec<Vec<PredicateId>> = batch.iter().map(|_| Vec::new()).collect();
        self.metrics.record_batch(batch.len() as u64);
        let threads = threads.clamp(1, batch.len().max(1));
        if threads == 1 {
            self.match_chunk(batch, &mut out);
            return out;
        }
        let chunk = batch.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (items, outs) in batch.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || self.match_chunk(items, outs));
            }
        });
        out
    }

    /// Matches one contiguous chunk, grouping by shard so each shard's
    /// read lock is taken once per run of tuples rather than per tuple.
    fn match_chunk(&self, items: &[(&str, &Tuple)], out: &mut [Vec<PredicateId>]) {
        debug_assert_eq!(items.len(), out.len());
        if items.is_empty() {
            return;
        }
        // Hash each relation name once.
        let sids: Vec<u32> = items.iter().map(|(r, _)| self.shard_of(r) as u32).collect();

        // Fast path — the whole chunk hits one shard (always true with
        // one shard configured; the common case for single-relation
        // workloads like §5.2): one lock, no grouping pass.
        if sids.iter().all(|&s| s == sids[0]) {
            let shard = self.lock_read(sids[0] as usize);
            for ((relation, tuple), slot) in items.iter().zip(out.iter_mut()) {
                shard.match_into(relation, tuple, slot, &self.metrics, &self.workload);
            }
            return;
        }

        let mut order: Vec<u32> = (0..items.len() as u32).collect();
        order.sort_unstable_by_key(|&i| sids[i as usize]);
        let mut at = 0;
        while at < order.len() {
            let sid = sids[order[at] as usize];
            // srclint:allow(lock-discipline): this is the ordered batch-acquisition path — one guard live at a time, shards visited in sorted order
            let shard = self.lock_read(sid as usize);
            while at < order.len() {
                let i = order[at] as usize;
                if sids[i] != sid {
                    break;
                }
                let (relation, tuple) = items[i];
                shard.match_into(relation, tuple, &mut out[i], &self.metrics, &self.workload);
                at += 1;
            }
        }
    }

    /// Number of per-attribute IBS-trees across all shards.
    pub fn attribute_tree_count(&self) -> usize {
        (0..self.shards.len())
            .map(|sid| {
                self.lock_read(sid)
                    .relations
                    .values()
                    .map(|r| r.tree_count())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total markers across all IBS-trees (§5.1 space metric).
    pub fn marker_count(&self) -> usize {
        (0..self.shards.len())
            .map(|sid| {
                self.lock_read(sid)
                    .relations
                    .values()
                    .map(|r| r.marker_count())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Snapshots per-shard and per-relation structure; see
    /// [`crate::stats::ShardStats`].
    pub(crate) fn with_shards_read<T>(
        &self,
        mut f: impl FnMut(usize, &FnvHashMap<String, RelationIndex>, &PredicateStore) -> T,
    ) -> Vec<T> {
        (0..self.shards.len())
            .map(|sid| {
                let shard = self.lock_read(sid);
                f(sid, &shard.relations, &shard.store)
            })
            .collect()
    }
}

impl Matcher for ShardedPredicateIndex {
    fn insert(&mut self, pred: Predicate, catalog: &Catalog) -> Result<PredicateId, IndexError> {
        self.insert_shared(pred, catalog)
    }

    fn remove(&mut self, id: PredicateId) -> Option<Predicate> {
        self.remove_shared(id)
    }

    fn match_tuple(&self, relation: &str, tuple: &Tuple) -> Vec<PredicateId> {
        let mut out = Vec::new();
        self.match_tuple_into(relation, tuple, &mut out);
        out
    }

    fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|sid| self.lock_read(sid).store.len())
            .sum()
    }

    fn strategy(&self) -> &'static str {
        "sharded-ibs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredicateIndex;
    use predicate::parse_predicate;
    use relation::{AttrType, Database, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        for name in ["emp", "dept", "proj", "acct"] {
            db.create_relation(
                Schema::builder(name)
                    .attr("a", AttrType::Int)
                    .attr("b", AttrType::Int)
                    .build(),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn ids_match_sequential_index() {
        let db = db();
        let mut seq = PredicateIndex::new();
        let sharded = ShardedPredicateIndex::new();
        for (rel, lo) in [("emp", 1), ("dept", 5), ("proj", 9), ("emp", 2)] {
            let src = format!("{rel}.a > {lo}");
            let p = parse_predicate(&src).unwrap();
            let a = seq.insert(p.clone(), db.catalog()).unwrap();
            let b = sharded.insert_shared(p, db.catalog()).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn batch_agrees_with_per_tuple_calls() {
        let mut db = db();
        let sharded = ShardedPredicateIndex::with_shards(4);
        for rel in ["emp", "dept", "proj", "acct"] {
            for lo in [10, 20, 30] {
                sharded
                    .insert_shared(
                        parse_predicate(&format!("{rel}.a > {lo}")).unwrap(),
                        db.catalog(),
                    )
                    .unwrap();
            }
        }
        let mut tuples = Vec::new();
        for i in 0..40i64 {
            let rel = ["emp", "dept", "proj", "acct"][(i % 4) as usize];
            let t = db.insert(rel, vec![Value::Int(i), Value::Int(0)]).unwrap();
            tuples.push((rel, t));
        }
        let batch: Vec<(&str, &Tuple)> = tuples.iter().map(|(r, t)| (*r, t)).collect();
        let expect: Vec<Vec<PredicateId>> = batch
            .iter()
            .map(|(r, t)| sharded.match_tuple(r, t))
            .collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(sharded.match_batch_threads(&batch, threads), expect);
        }
        assert_eq!(sharded.match_batch(&batch), expect);
    }

    #[test]
    fn concurrent_insert_match_remove() {
        let mut db = db();
        let mut tuples = Vec::new();
        for i in 0..16i64 {
            tuples.push(
                db.insert("emp", vec![Value::Int(i), Value::Int(0)])
                    .unwrap(),
            );
        }
        let sharded = ShardedPredicateIndex::with_shards(2);
        let catalog = db.catalog();
        std::thread::scope(|s| {
            for w in 0..4 {
                let sharded = &sharded;
                let tuples = &tuples;
                s.spawn(move || {
                    for i in 0..50 {
                        let id = sharded
                            .insert_shared(
                                parse_predicate(&format!("emp.a > {}", w * 100 + i)).unwrap(),
                                catalog,
                            )
                            .unwrap();
                        for t in tuples {
                            std::hint::black_box(sharded.match_tuple("emp", t));
                        }
                        if i % 2 == 0 {
                            assert!(sharded.remove_shared(id).is_some());
                        }
                    }
                });
            }
        });
        // Each worker kept the odd-i half of its 50 inserts.
        assert_eq!(Matcher::len(&sharded), 4 * 25);
    }

    #[test]
    fn single_shard_still_correct() {
        let mut db = db();
        let sharded = ShardedPredicateIndex::with_shards(1);
        let id = sharded
            .insert_shared(parse_predicate("emp.a > 5").unwrap(), db.catalog())
            .unwrap();
        let hit = db
            .insert("emp", vec![Value::Int(9), Value::Int(0)])
            .unwrap();
        let miss = db
            .insert("emp", vec![Value::Int(1), Value::Int(0)])
            .unwrap();
        let batch = [("emp", &hit), ("emp", &miss), ("dept", &hit)];
        assert_eq!(
            sharded.match_batch_threads(&batch, 3),
            vec![vec![id], vec![], vec![]]
        );
    }

    #[test]
    fn remove_shared_is_none_for_unknown() {
        let sharded = ShardedPredicateIndex::new();
        assert!(sharded.remove_shared(PredicateId(7)).is_none());
        assert!(Matcher::is_empty(&sharded));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedPredicateIndex::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedPredicateIndex::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedPredicateIndex::with_shards(16).shard_count(), 16);
    }

    #[test]
    fn insert_many_agrees_with_one_at_a_time() {
        let mut db = db();
        let srcs = [
            "emp.a > 10",
            "dept.a > 10",
            "proj.b < 0",
            "emp.b = 3",
            "acct.a >= 1",
        ];
        let preds: Vec<_> = srcs.iter().map(|s| parse_predicate(s).unwrap()).collect();

        let one = ShardedPredicateIndex::with_shards(4);
        let bulk = ShardedPredicateIndex::with_shards(4);
        let seq_ids: Vec<_> = preds
            .iter()
            .map(|p| one.insert_shared(p.clone(), db.catalog()).unwrap())
            .collect();
        let bulk_ids = bulk.insert_many(preds, db.catalog()).unwrap();
        assert_eq!(bulk_ids, seq_ids);
        assert_eq!(bulk_ids, (0..5).map(PredicateId).collect::<Vec<_>>());

        for i in 0..30i64 {
            for rel in ["emp", "dept", "proj", "acct"] {
                let t = db.insert(rel, vec![Value::Int(i), Value::Int(0)]).unwrap();
                assert_eq!(bulk.match_tuple(rel, &t), one.match_tuple(rel, &t));
            }
        }
    }

    #[test]
    fn insert_many_failure_inserts_nothing() {
        let db = db();
        let sharded = ShardedPredicateIndex::new();
        let preds = vec![
            parse_predicate("emp.a > 1").unwrap(),
            parse_predicate("nope.a > 1").unwrap(),
        ];
        assert!(sharded.insert_many(preds, db.catalog()).is_err());
        assert!(Matcher::is_empty(&sharded));
        // The id counter was not consumed by the failed batch.
        let id = sharded
            .insert_shared(parse_predicate("emp.a > 1").unwrap(), db.catalog())
            .unwrap();
        assert_eq!(id, PredicateId(0));
    }
}
