//! The §2 baseline matching strategies, in the paper's order of
//! increasing complexity.

mod hash_seq;
mod locking;
mod rtree_matcher;
mod sequential;

pub use hash_seq::HashSequentialMatcher;
pub use locking::PhysicalLockingMatcher;
pub use rtree_matcher::RTreeMatcher;
pub use sequential::SequentialMatcher;
