//! §2.3: physical locking, simulated in memory.
//!
//! In POSTGRES-style physical locking ([SSH86], [SHP88]) each predicate
//! is run through the query optimizer; an index-scan plan leaves
//! persistent interval locks on the index ranges it read, while a
//! sequential-scan plan escalates to a relation-level lock. A new or
//! modified tuple collects every conflicting lock and tests the
//! associated predicates.
//!
//! The simulation keeps the algorithm's *matching* behaviour and cost
//! structure while replacing the storage manager: interval locks live in
//! a per-(relation, attribute) ordered lock table (an interval treap
//! standing in for B-tree index-range locks), relation locks in a flat
//! list. The degenerate case the paper criticizes — "when there are no
//! indexes ... most predicates will have a relation-level lock",
//! reducing matching to a sequential scan — falls out directly: only
//! attributes declared in [`PhysicalLockingMatcher::with_indexed_attrs`]
//! can carry interval locks.

use crate::matcher::{IndexError, Matcher, PredicateId, PredicateStore};
use altindex::{DynamicStabIndex, IntervalTreap, StabIndex};
use predicate::selectivity::clause_selectivity;
use predicate::{BoundClause, Predicate};
use relation::fx::{FnvHashMap, FnvHashSet};
use relation::{Catalog, Tuple, Value};

/// Where a predicate's lock was placed.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Lock {
    /// Interval lock on an attribute's (simulated) index.
    Index { relation: String, attr: usize },
    /// Relation-level lock (the escalation case).
    Relation(String),
    /// No lock: unsatisfiable predicate.
    None,
}

/// Simulated physical-locking matcher.
#[derive(Debug, Clone, Default)]
pub struct PhysicalLockingMatcher {
    store: PredicateStore,
    /// `(relation, attr)` pairs that have a database index available for
    /// the optimizer to choose.
    indexed_attrs: FnvHashSet<(String, usize)>,
    /// Interval locks per indexed attribute.
    lock_tables: FnvHashMap<(String, usize), IntervalTreap<Value>>,
    /// Relation-level locks.
    relation_locks: FnvHashMap<String, Vec<PredicateId>>,
    locks: FnvHashMap<u32, Lock>,
}

impl PhysicalLockingMatcher {
    /// A matcher where *no* attribute has a database index — every
    /// predicate escalates to a relation lock (the degenerate case).
    pub fn new() -> Self {
        PhysicalLockingMatcher::default()
    }

    /// Declares which `(relation, attribute name)` pairs have database
    /// indexes, resolving names through `catalog`.
    pub fn with_indexed_attrs<'a>(
        catalog: &Catalog,
        attrs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Self {
        let mut m = Self::new();
        for (rel, attr) in attrs {
            let Some(r) = catalog.relation(rel) else {
                continue;
            };
            if let Some(ix) = r.schema().attr_index(attr) {
                m.indexed_attrs.insert((rel.to_string(), ix));
            }
        }
        m
    }

    /// How many predicates ended up with relation-level locks (the
    /// paper's degenerate-case metric).
    pub fn relation_lock_count(&self) -> usize {
        self.relation_locks.values().map(|v| v.len()).sum()
    }
}

impl Matcher for PhysicalLockingMatcher {
    fn insert(&mut self, pred: Predicate, catalog: &Catalog) -> Result<PredicateId, IndexError> {
        let (id, stored) = self.store.register(pred, catalog)?;
        let relation = stored.bound.relation().to_string();

        // "Run the standard query optimizer to produce an access plan":
        // pick the most selective indexable clause whose attribute has a
        // database index; without one, the plan is a sequential scan and
        // the lock escalates.
        let lock = if !stored.bound.is_satisfiable() {
            Lock::None
        } else {
            let best = stored
                .bound
                .clauses()
                .iter()
                .filter_map(|c| match c {
                    BoundClause::Range { attr, interval }
                        if self.indexed_attrs.contains(&(relation.clone(), *attr)) =>
                    {
                        Some((
                            *attr,
                            interval.clone(),
                            clause_selectivity(catalog, &relation, c),
                        ))
                    }
                    _ => None,
                })
                .min_by(|a, b| a.2.total_cmp(&b.2));
            match best {
                Some((attr, interval, _)) => {
                    self.lock_tables
                        .entry((relation.clone(), attr))
                        .or_default()
                        .insert(id, interval);
                    Lock::Index {
                        relation: relation.clone(),
                        attr,
                    }
                }
                None => {
                    self.relation_locks
                        .entry(relation.clone())
                        .or_default()
                        .push(id);
                    Lock::Relation(relation.clone())
                }
            }
        };
        self.locks.insert(id.0, lock);
        Ok(id)
    }

    fn remove(&mut self, id: PredicateId) -> Option<Predicate> {
        let stored = self.store.unregister(id)?;
        // srclint:allow(no-panic-in-lib): store and locks are updated together
        match self.locks.remove(&id.0).expect("stored lock") {
            Lock::Index { relation, attr } => {
                let table = self
                    .lock_tables
                    .get_mut(&(relation, attr))
                    // srclint:allow(no-panic-in-lib): an Index lock records the table it lives in
                    .expect("lock table exists");
                // srclint:allow(no-panic-in-lib): the table held this id since the lock was recorded
                table.remove(id).expect("interval lock exists");
            }
            Lock::Relation(relation) => {
                self.relation_locks
                    .get_mut(&relation)
                    // srclint:allow(no-panic-in-lib): a Relation lock implies the list exists
                    .expect("relation lock list exists")
                    .retain(|&p| p != id);
            }
            Lock::None => {}
        }
        Some(stored.source)
    }

    fn match_tuple(&self, relation: &str, tuple: &Tuple) -> Vec<PredicateId> {
        // "The system collects locks that conflict with the update (all
        // relation level locks, any locks that conflict with any indexes
        // that were updated) ... for each of the locks collected, the
        // system tests the tuple against the predicate".
        let mut out = Vec::new();
        for ((rel, attr), table) in &self.lock_tables {
            // Skip attributes the tuple doesn't carry (short arity): a
            // lock on a missing attribute cannot conflict, and the
            // residual full_match below agrees.
            if rel == relation {
                if let Some(value) = tuple.values().get(*attr) {
                    table.stab_into(value, &mut out);
                }
            }
        }
        if let Some(rl) = self.relation_locks.get(relation) {
            out.extend_from_slice(rl);
        }
        out.retain(|&id| self.store.full_match(id, tuple));
        out.sort_unstable();
        out
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn strategy(&self) -> &'static str {
        "physical-locking"
    }
}
