//! §2.2: hash on relation name plus sequential search.
//!
//! "This is essentially the algorithm used in many main-memory-based
//! production rule systems including some implementations of OPS5. The
//! algorithm performs well when the average number of predicates per
//! relation is small, and the predicates are distributed evenly over the
//! relations."

use crate::matcher::{IndexError, Matcher, PredicateId, PredicateStore};
use predicate::Predicate;
use relation::fx::FnvHashMap;
use relation::{Catalog, Tuple};

/// One predicate list per relation, located by hashing the relation
/// name; the list is then scanned sequentially.
#[derive(Debug, Clone, Default)]
pub struct HashSequentialMatcher {
    store: PredicateStore,
    by_relation: FnvHashMap<String, Vec<PredicateId>>,
}

impl HashSequentialMatcher {
    /// An empty matcher.
    pub fn new() -> Self {
        HashSequentialMatcher::default()
    }
}

impl Matcher for HashSequentialMatcher {
    fn insert(&mut self, pred: Predicate, catalog: &Catalog) -> Result<PredicateId, IndexError> {
        let (id, stored) = self.store.register(pred, catalog)?;
        let relation = stored.bound.relation().to_string();
        self.by_relation.entry(relation).or_default().push(id);
        Ok(id)
    }

    fn remove(&mut self, id: PredicateId) -> Option<Predicate> {
        let stored = self.store.unregister(id)?;
        if let Some(list) = self.by_relation.get_mut(stored.bound.relation()) {
            list.retain(|&p| p != id);
        }
        Some(stored.source)
    }

    fn match_tuple(&self, relation: &str, tuple: &Tuple) -> Vec<PredicateId> {
        let Some(list) = self.by_relation.get(relation) else {
            return Vec::new();
        };
        let mut out: Vec<PredicateId> = list
            .iter()
            .copied()
            .filter(|&id| self.store.full_match(id, tuple))
            .collect();
        out.sort_unstable();
        out
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn strategy(&self) -> &'static str {
        "hash+sequential"
    }
}
