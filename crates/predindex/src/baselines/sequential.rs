//! §2.1: pure sequential search.
//!
//! "The system traverses a list of predicates sequentially, testing each
//! against the tuple. This has low overhead and works well for small
//! numbers of predicates, but clearly performs badly when the number of
//! predicates is large."

use crate::matcher::{IndexError, Matcher, PredicateId, PredicateStore};
use predicate::Predicate;
use relation::{Catalog, Tuple};

/// One flat list of every predicate in the system; the relation-name
/// check is just the leading conjunct of each predicate test.
#[derive(Debug, Clone, Default)]
pub struct SequentialMatcher {
    store: PredicateStore,
    order: Vec<PredicateId>,
}

impl SequentialMatcher {
    /// An empty matcher.
    pub fn new() -> Self {
        SequentialMatcher::default()
    }
}

impl Matcher for SequentialMatcher {
    fn insert(&mut self, pred: Predicate, catalog: &Catalog) -> Result<PredicateId, IndexError> {
        let (id, _) = self.store.register(pred, catalog)?;
        self.order.push(id);
        Ok(id)
    }

    fn remove(&mut self, id: PredicateId) -> Option<Predicate> {
        let stored = self.store.unregister(id)?;
        self.order.retain(|&p| p != id);
        Some(stored.source)
    }

    fn match_tuple(&self, relation: &str, tuple: &Tuple) -> Vec<PredicateId> {
        let mut out: Vec<PredicateId> = self
            .order
            .iter()
            .copied()
            .filter(|&id| {
                // srclint:allow(no-panic-in-lib): order and store are updated together
                let p = self.store.get(id).expect("order entry is stored");
                p.bound.relation() == relation && p.bound.matches(tuple)
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn strategy(&self) -> &'static str {
        "sequential"
    }
}
