//! §2.4: multi-dimensional indexing with an R-tree.
//!
//! "Predicates are treated as regions in a k-dimensional space (where k
//! is the number of attributes in the relation on which the predicates
//! are defined), and inserted into a k-dimensional index. Each new or
//! modified tuple is used as a key to search the index to find all
//! predicates that overlap the tuple."
//!
//! Typical predicates restrict only one or two of those k attributes, so
//! their regions are unbounded "slices" — clamped here to world-bound
//! rectangles — which overlap extensively and defeat the R-tree's space
//! partitioning. That degradation is the point of this baseline.
//!
//! Values are flattened to `f64` coordinates monotonically (strings via
//! an 8-byte prefix), so the rectangle test may over-approximate; the
//! residual `PREDICATES` test restores exactness.

use crate::matcher::{IndexError, Matcher, PredicateId, PredicateStore};
use interval::{Lower, Upper};
use predicate::{BoundClause, Predicate};
use relation::fx::FnvHashMap;
use relation::{Catalog, Tuple};
use rtree::{RTree, Rect, WORLD};

/// Keeps every coordinate inside the finite world box; monotone, so the
/// rectangle over-approximation never produces a false negative.
fn clamp(x: f64) -> f64 {
    x.clamp(-WORLD, WORLD)
}

/// Per-relation k-dimensional R-tree over predicate regions.
#[derive(Debug, Clone, Default)]
pub struct RTreeMatcher {
    store: PredicateStore,
    by_relation: FnvHashMap<String, RTree>,
    /// Unsatisfiable predicates are stored but indexed nowhere.
    skipped: FnvHashMap<u32, ()>,
}

impl RTreeMatcher {
    /// An empty matcher.
    pub fn new() -> Self {
        RTreeMatcher::default()
    }
}

impl Matcher for RTreeMatcher {
    fn insert(&mut self, pred: Predicate, catalog: &Catalog) -> Result<PredicateId, IndexError> {
        let (id, stored) = self.store.register(pred, catalog)?;
        let relation = stored.bound.relation().to_string();
        if !stored.bound.is_satisfiable() {
            self.skipped.insert(id.0, ());
            return Ok(id);
        }
        let schema = catalog
            .relation(&relation)
            // srclint:allow(no-panic-in-lib): insert() verified the relation exists before building the rect
            .expect("registration verified the relation")
            .schema();
        let dims = schema.arity();
        // Start from the whole world; each range clause narrows its
        // attribute's dimension. Function clauses narrow nothing.
        let mut rect = Rect::world(dims);
        for clause in stored.bound.clauses() {
            if let BoundClause::Range { attr, interval } = clause {
                match interval.lo() {
                    Lower::Unbounded => {}
                    Lower::Inclusive(v) | Lower::Exclusive(v) => {
                        rect.lo[*attr] = rect.lo[*attr].max(clamp(v.as_f64_lossy()));
                    }
                }
                match interval.hi() {
                    Upper::Unbounded => {}
                    Upper::Inclusive(v) | Upper::Exclusive(v) => {
                        rect.hi[*attr] = rect.hi[*attr].min(clamp(v.as_f64_lossy()));
                    }
                }
            }
        }
        self.by_relation
            .entry(relation)
            .or_insert_with(|| RTree::new(dims))
            .insert(id, rect);
        Ok(id)
    }

    fn remove(&mut self, id: PredicateId) -> Option<Predicate> {
        let stored = self.store.unregister(id)?;
        if self.skipped.remove(&id.0).is_none() {
            let tree = self
                .by_relation
                .get_mut(stored.bound.relation())
                // srclint:allow(no-panic-in-lib): a non-skipped stored id was inserted into its relation's tree
                .expect("indexed relation exists");
            // srclint:allow(no-panic-in-lib): the tree held this rect since insertion
            tree.remove(id).expect("indexed rect exists");
            // Drop the tree once empty: its dimensionality is frozen at
            // creation, and the relation may come back with a different
            // schema arity.
            if tree.is_empty() {
                self.by_relation.remove(stored.bound.relation());
            }
        }
        Some(stored.source)
    }

    fn match_tuple(&self, relation: &str, tuple: &Tuple) -> Vec<PredicateId> {
        let Some(tree) = self.by_relation.get(relation) else {
            return Vec::new();
        };
        let mut point: Vec<f64> = tuple
            .values()
            .iter()
            .map(|v| clamp(v.as_f64_lossy()))
            .collect();
        // Tuples shorter than the schema (projections) still stab: pad
        // missing dimensions with an in-world value so predicates without
        // a clause there (full-world extent) stay candidates. Predicates
        // *with* a clause on a missing attribute may be pruned here, which
        // is sound — the residual test rejects them anyway. Extra values
        // beyond the schema carry no rect dimension, so truncate.
        point.resize(tree.dims(), 0.0);
        let mut out = tree.stab(&point);
        out.retain(|&id| self.store.full_match(id, tuple));
        out.sort_unstable();
        out
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn strategy(&self) -> &'static str {
        "rtree"
    }
}
