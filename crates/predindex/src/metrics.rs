//! Metric handles for the predicate indexes.
//!
//! One [`IndexMetrics`] bundle holds every counter the matching path
//! touches, pre-resolved at attach time so the hot path never takes
//! the registry lock for the fixed-name metrics. Per-relation and
//! per-attribute families are created lazily (first match against a
//! relation registers its counters) behind an `RwLock` map whose read
//! path is one shared lock plus a hash probe — and none of it runs at
//! all when the bundle is disabled: every recording helper starts with
//! the same single branch the `telemetry` handles use.

use relation::fx::FnvHashMap;
use std::sync::{Arc, RwLock};
use std::time::Instant;
use telemetry::{Counter, Histogram, Registry, Tracer};

/// The stab-work counters of one `(relation, attribute)` IBS-tree.
#[derive(Debug, Clone)]
pub(crate) struct AttrWork {
    nodes: Counter,
    marks: Counter,
}

/// Every metric the sequential and sharded indexes record.
#[derive(Debug)]
pub struct IndexMetrics {
    enabled: bool,
    /// Present only when enabled — needed to mint lazy families.
    registry: Option<Arc<Registry>>,
    /// Span tracer for the match path (independent of the counter
    /// recorder: either can be enabled without the other).
    tracer: Tracer,
    /// Tuples matched (`match_tuple*` calls, one per tuple).
    match_tuples: Counter,
    /// Residual (full-conjunction) tests run — one per partial match.
    residual_tests: Counter,
    /// Residual tests that held (full matches).
    residual_passes: Counter,
    /// IBS-tree endpoint nodes visited across all stabs.
    ibs_nodes: Counter,
    /// Marks collected across all stabs.
    ibs_marks: Counter,
    /// Predicates swept from non-indexable lists.
    non_indexable_scanned: Counter,
    /// Tuples per `match_batch*` call.
    batch_sizes: Histogram,
    /// Shard lock acquisition wait, all shards pooled.
    lock_wait: Histogram,
    /// Cumulative lock-wait nanos per shard.
    shard_lock_wait: Vec<Counter>,
    /// `relation name -> matches counter`, minted on first match.
    per_relation: RwLock<FnvHashMap<String, Counter>>,
    /// `relation name -> attr -> stab-work counters`, minted on first
    /// stab.
    per_attr: RwLock<FnvHashMap<String, FnvHashMap<usize, AttrWork>>>,
}

impl IndexMetrics {
    /// The no-op bundle every index starts with.
    pub fn disabled() -> Arc<IndexMetrics> {
        Arc::new(Self::inert(Tracer::disabled()))
    }

    /// No-op counters, but a caller-chosen tracer.
    fn inert(tracer: Tracer) -> IndexMetrics {
        IndexMetrics {
            enabled: false,
            registry: None,
            tracer,
            match_tuples: Counter::disabled(),
            residual_tests: Counter::disabled(),
            residual_passes: Counter::disabled(),
            ibs_nodes: Counter::disabled(),
            ibs_marks: Counter::disabled(),
            non_indexable_scanned: Counter::disabled(),
            batch_sizes: Histogram::disabled(),
            lock_wait: Histogram::disabled(),
            shard_lock_wait: Vec::new(),
            per_relation: RwLock::new(FnvHashMap::default()),
            per_attr: RwLock::new(FnvHashMap::default()),
        }
    }

    /// Resolves the bundle against a registry; `shards` counters are
    /// minted for per-shard lock-wait attribution (0 for the
    /// unsharded index). A disabled registry yields the no-op bundle.
    pub fn from_registry(registry: &Arc<Registry>, shards: usize) -> Arc<IndexMetrics> {
        Self::from_parts(registry, shards, Tracer::disabled())
    }

    /// [`from_registry`](Self::from_registry) plus a span tracer. The
    /// bundle is fully inert only when both recorders are disabled.
    pub fn from_parts(
        registry: &Arc<Registry>,
        shards: usize,
        tracer: Tracer,
    ) -> Arc<IndexMetrics> {
        if !registry.is_enabled() {
            return Arc::new(Self::inert(tracer));
        }
        Arc::new(IndexMetrics {
            enabled: true,
            registry: Some(registry.clone()),
            tracer,
            match_tuples: registry.counter("predindex_match_tuples_total"),
            residual_tests: registry.counter("predindex_residual_tests_total"),
            residual_passes: registry.counter("predindex_residual_passes_total"),
            ibs_nodes: registry.counter("predindex_ibs_nodes_visited_total"),
            ibs_marks: registry.counter("predindex_ibs_marks_scanned_total"),
            non_indexable_scanned: registry.counter("predindex_non_indexable_scanned_total"),
            batch_sizes: registry.histogram("predindex_match_batch_size"),
            lock_wait: registry.histogram("predindex_shard_lock_wait_nanos"),
            shard_lock_wait: (0..shards)
                .map(|i| {
                    registry.counter(&format!(
                        "predindex_shard_lock_wait_nanos_total{{shard=\"{i}\"}}"
                    ))
                })
                .collect(),
            per_relation: RwLock::new(FnvHashMap::default()),
            per_attr: RwLock::new(FnvHashMap::default()),
        })
    }

    /// Does this bundle record counters? (The tracer is separate; see
    /// [`tracer`](Self::tracer).)
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The span tracer threaded through the match path.
    #[inline]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// One matched tuple: its partial-match count (= residual tests
    /// run) and how many survived the residual test.
    pub(crate) fn record_match(&self, relation: &str, partials: u64, passes: u64) {
        if !self.enabled {
            return;
        }
        self.match_tuples.inc();
        self.residual_tests.add(partials);
        self.residual_passes.add(passes);
        self.relation_counter(relation).inc();
    }

    /// One per-attribute stab's work, attributed globally and to the
    /// `(relation, attr)` family.
    pub(crate) fn record_attr_stab(&self, relation: &str, attr: usize, nodes: u64, marks: u64) {
        if !self.enabled {
            return;
        }
        self.ibs_nodes.add(nodes);
        self.ibs_marks.add(marks);
        {
            // srclint:allow(no-panic-in-lib): a poisoned metrics map means a holder panicked; propagating is by design
            let map = self.per_attr.read().expect("metrics map poisoned");
            if let Some(work) = map.get(relation).and_then(|inner| inner.get(&attr)) {
                work.nodes.add(nodes);
                work.marks.add(marks);
                return;
            }
        }
        // srclint:allow(no-panic-in-lib): the enabled() constructor always sets the registry
        let registry = self.registry.as_ref().expect("enabled bundle has registry");
        let work = AttrWork {
            nodes: registry.counter(&format!(
                "predindex_attr_stab_nodes_total{{relation=\"{relation}\",attr=\"{attr}\"}}"
            )),
            marks: registry.counter(&format!(
                "predindex_attr_stab_marks_total{{relation=\"{relation}\",attr=\"{attr}\"}}"
            )),
        };
        work.nodes.add(nodes);
        work.marks.add(marks);
        self.per_attr
            // srclint:allow(lock-order): strictly sequential — the probe's read guard is dropped at its block end before the mint takes the write lock
            .write()
            // srclint:allow(no-panic-in-lib): a poisoned metrics map means a holder panicked; propagating is by design
            .expect("metrics map poisoned")
            .entry(relation.to_string())
            .or_default()
            .insert(attr, work);
    }

    /// A non-indexable-list sweep of `n` predicates.
    #[inline]
    pub(crate) fn record_non_indexable(&self, n: u64) {
        self.non_indexable_scanned.add(n);
    }

    /// One `match_batch*` call over `n` tuples.
    #[inline]
    pub(crate) fn record_batch(&self, n: u64) {
        self.batch_sizes.record(n);
    }

    /// Starts timing a shard-lock acquisition (`None` when disabled,
    /// so the disabled path never reads the clock).
    #[inline]
    pub(crate) fn lock_timer(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Ends a [`IndexMetrics::lock_timer`] measurement against `shard`.
    pub(crate) fn record_lock_wait(&self, shard: usize, started: Option<Instant>) {
        if let Some(t0) = started {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.lock_wait.record(nanos);
            if let Some(c) = self.shard_lock_wait.get(shard) {
                c.add(nanos);
            }
        }
    }

    fn relation_counter(&self, relation: &str) -> Counter {
        {
            // srclint:allow(no-panic-in-lib): a poisoned metrics map means a holder panicked; propagating is by design
            let map = self.per_relation.read().expect("metrics map poisoned");
            if let Some(c) = map.get(relation) {
                return c.clone();
            }
        }
        // srclint:allow(no-panic-in-lib): the enabled() constructor always sets the registry
        let registry = self.registry.as_ref().expect("enabled bundle has registry");
        let c = registry.counter(&format!(
            "predindex_relation_matches_total{{relation=\"{relation}\"}}"
        ));
        self.per_relation
            // srclint:allow(lock-order): strictly sequential — the probe's read guard is dropped at its block end before the mint takes the write lock
            .write()
            // srclint:allow(no-panic-in-lib): a poisoned metrics map means a holder panicked; propagating is by design
            .expect("metrics map poisoned")
            .entry(relation.to_string())
            .or_insert(c)
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Matcher, PredicateIndex, ShardedPredicateIndex};
    use predicate::parse_predicate;
    use relation::{AttrType, Database, Schema, Value};
    use std::sync::Arc;
    use telemetry::Registry;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn sequential_index_records_match_path_counters() {
        let mut db = db();
        let mut index = PredicateIndex::new();
        // Two-clause conjunction: one clause indexed, one residual.
        index
            .insert(
                parse_predicate("emp.age > 50 and emp.salary < 20000").unwrap(),
                db.catalog(),
            )
            .unwrap();
        index
            .insert(parse_predicate("isodd(emp.age)").unwrap(), db.catalog())
            .unwrap();

        let registry = Arc::new(Registry::new());
        index.attach_registry(&registry);

        // age 61 partial-matches the range clause but fails residual on
        // salary; isodd(61) passes from the non-indexable list.
        let t = db
            .insert("emp", vec![Value::Int(61), Value::Int(99_000)])
            .unwrap();
        let hits = index.match_tuple("emp", &t);
        assert_eq!(hits.len(), 1);

        assert_eq!(
            registry.counter_value("predindex_match_tuples_total"),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("predindex_residual_tests_total"),
            Some(2)
        );
        assert_eq!(
            registry.counter_value("predindex_residual_passes_total"),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("predindex_non_indexable_scanned_total"),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("predindex_relation_matches_total{relation=\"emp\"}"),
            Some(1)
        );
        assert!(
            registry
                .counter_value("predindex_ibs_nodes_visited_total")
                .unwrap()
                >= 1
        );
        assert_eq!(
            registry.counter_family_total("predindex_attr_stab_nodes_total"),
            registry
                .counter_value("predindex_ibs_nodes_visited_total")
                .unwrap()
        );
    }

    #[test]
    fn explain_agrees_with_match_on_both_indexes() {
        let mut db = db();
        let srcs = [
            "emp.age > 50 and emp.salary < 20000",
            "emp.salary >= 90000",
            "isodd(emp.age)",
        ];
        let mut seq = PredicateIndex::new();
        let sharded = ShardedPredicateIndex::with_shards(4);
        for s in &srcs {
            let p = parse_predicate(s).unwrap();
            seq.insert(p.clone(), db.catalog()).unwrap();
            sharded.insert_shared(p, db.catalog()).unwrap();
        }
        let t = db
            .insert("emp", vec![Value::Int(61), Value::Int(99_000)])
            .unwrap();

        for trace in [
            seq.explain_tuple("emp", &t),
            sharded.explain_tuple("emp", &t),
        ] {
            assert!(trace.relation_indexed);
            let expect: Vec<u32> = seq.match_tuple("emp", &t).iter().map(|id| id.0).collect();
            let mut got = trace.matched();
            got.sort_unstable();
            assert_eq!(got, expect);
            assert_eq!(trace.partial_matches(), 3);
            assert_eq!(trace.non_indexable_scanned, 1);
            assert!(trace.nodes_visited() >= 1);
        }
        assert_eq!(seq.explain_tuple("emp", &t).shard, None);
        assert!(sharded.explain_tuple("emp", &t).shard.is_some());
        // Unknown relation: an honest empty trace, not a panic.
        let ghost = seq.explain_tuple("ghost", &t);
        assert!(!ghost.relation_indexed);
        assert_eq!(ghost.partial_matches(), 0);
    }

    #[test]
    fn sharded_index_records_lock_wait_and_batch_sizes() {
        let mut db = db();
        let mut sharded = ShardedPredicateIndex::with_shards(4);
        let registry = Arc::new(Registry::new());
        sharded.attach_registry(&registry);
        sharded
            .insert_shared(parse_predicate("emp.age > 50").unwrap(), db.catalog())
            .unwrap();
        let t = db
            .insert("emp", vec![Value::Int(61), Value::Int(0)])
            .unwrap();
        let batch = [("emp", &t), ("emp", &t), ("emp", &t)];
        sharded.match_batch_threads(&batch, 2);

        let (batches, tuples) = registry
            .histogram_totals("predindex_match_batch_size")
            .unwrap();
        assert_eq!((batches, tuples), (1, 3));
        // Insert + batch locks were all timed: at least two waits.
        let (waits, _) = registry
            .histogram_totals("predindex_shard_lock_wait_nanos")
            .unwrap();
        assert!(waits >= 2, "lock acquisitions recorded: {waits}");
        // Every shard got its own wait counter at attach time.
        let names = registry.names();
        for shard in 0..4 {
            let name = format!("predindex_shard_lock_wait_nanos_total{{shard=\"{shard}\"}}");
            assert!(names.contains(&name), "missing {name}");
        }
        assert_eq!(
            registry.counter_value("predindex_match_tuples_total"),
            Some(3)
        );
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let mut db = db();
        let mut index = PredicateIndex::new();
        index
            .insert(parse_predicate("emp.age > 50").unwrap(), db.catalog())
            .unwrap();
        let registry = Arc::new(Registry::disabled());
        index.attach_registry(&registry);
        let t = db
            .insert("emp", vec![Value::Int(61), Value::Int(0)])
            .unwrap();
        assert_eq!(index.match_tuple("emp", &t).len(), 1);
        assert!(registry.names().is_empty());
        assert_eq!(registry.counter_value("predindex_match_tuples_total"), None);
    }
}
