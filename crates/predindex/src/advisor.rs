//! The index advisor: §5.2 cost projection over observed workload.
//!
//! The paper prices the predicate index analytically — cost per tuple
//! as a function of live predicate population, stab selectivity, and
//! op mix. [`Advisor`] turns that model into a running recommendation
//! engine: it reads the per-relation+attribute accounts a
//! [`WorkloadStats`](telemetry::WorkloadStats) handle collected (see
//! [`PredicateIndex::attach_workload`](crate::PredicateIndex::attach_workload)),
//! plugs each attribute's observed statistics into per-backend cost
//! formulas, and emits a ranked [`Recommendation`] per attribute with
//! an estimated crossover margin. The backends priced are the §4.1
//! comparator family behind `altindex`'s traits:
//!
//! | backend | stab | insert | delete |
//! |---|---|---|---|
//! | IBS-tree      | `c·log₂(n+2)` | `c·log₂(n+2)` | `c·log₂(n+2)` |
//! | skip list     | `c·log₂(n+2)` | `c·log₂(n+2)` | `c·log₂(n+2)` |
//! | interval tree | `c·log₂(n+2)` | `c·(n+1)` rebuild | `c·n` rebuild |
//! | naive list    | `c·n` scan    | `c` push      | `c·n/2` scan |
//!
//! plus a common `hit_ns · hits` term per stab (reporting a match
//! costs the same everywhere). The `c` unit constants come from
//! [`AdvisorConstants::default`] or, for validation, from
//! [`calibrate_constants`] which micro-benchmarks every backend
//! in-process; [`measure_backends`] replays a recorded op log against
//! the real structures so projected and measured cost can be compared
//! (the `advisor_report` bench bin and `BENCH_advisor.json`).

use crate::matcher::Matcher;
use altindex::{BulkBuild, CenteredIntervalTree, DynamicStabIndex, IntervalSkipList, StabIndex};
use ibs::IbsTree;
use interval::{Interval, IntervalId};
use relation::{AttrType, Database, Schema, Tuple, Value};
use std::sync::Arc;
use std::time::Instant;
use telemetry::{Counter, Registry, WorkloadStats, WorkloadSummary};

/// The candidate index backends the advisor prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The paper's interval binary search tree (the current backend).
    Ibs,
    /// Hanson's §6 successor structure (`altindex::IntervalSkipList`).
    SkipList,
    /// Static centered interval tree: fastest stabs, rebuilds on churn.
    IntervalTree,
    /// The §2.1 sequential list: O(1) insert, O(n) stab and delete.
    Naive,
}

impl Backend {
    /// Every backend, in ranking-table order.
    pub const ALL: [Backend; 4] = [
        Backend::Ibs,
        Backend::SkipList,
        Backend::IntervalTree,
        Backend::Naive,
    ];

    /// Stable machine-readable name (used in JSON and bench baselines).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Ibs => "ibs",
            Backend::SkipList => "skiplist",
            Backend::IntervalTree => "interval_tree",
            Backend::Naive => "naive",
        }
    }

    /// Work units one stab costs at live population `n`.
    fn stab_units(self, n: f64) -> f64 {
        match self {
            Backend::Naive => n.max(1.0),
            _ => (n + 2.0).log2(),
        }
    }

    /// Work units one insert costs at live population `n`.
    fn insert_units(self, n: f64) -> f64 {
        match self {
            Backend::Ibs | Backend::SkipList => (n + 2.0).log2(),
            // A static structure "inserts" by rebuilding over n+1 items.
            Backend::IntervalTree => n + 1.0,
            Backend::Naive => 1.0,
        }
    }

    /// Work units one delete costs at live population `n`.
    fn delete_units(self, n: f64) -> f64 {
        match self {
            Backend::Ibs | Backend::SkipList => (n + 2.0).log2(),
            Backend::IntervalTree => n.max(1.0),
            // Average scan distance of an unordered list removal.
            Backend::Naive => (n / 2.0).max(1.0),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-backend unit costs (nanoseconds per work unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendCost {
    pub unit_stab_ns: f64,
    pub unit_insert_ns: f64,
    pub unit_delete_ns: f64,
}

/// The advisor's calibration: per-backend unit costs plus the common
/// per-reported-hit cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdvisorConstants {
    /// Cost of collecting one matching id, identical across backends.
    pub hit_ns: f64,
    pub ibs: BackendCost,
    pub skiplist: BackendCost,
    pub interval_tree: BackendCost,
    pub naive: BackendCost,
}

impl AdvisorConstants {
    /// The unit costs for one backend.
    pub fn cost(&self, backend: Backend) -> &BackendCost {
        match backend {
            Backend::Ibs => &self.ibs,
            Backend::SkipList => &self.skiplist,
            Backend::IntervalTree => &self.interval_tree,
            Backend::Naive => &self.naive,
        }
    }
}

impl Default for AdvisorConstants {
    /// Representative constants measured once on a development machine
    /// (release build, `calibrate_constants` at n=512). Rankings are
    /// driven by the asymptotic work-unit shapes far more than by
    /// these; validation paths calibrate live instead.
    fn default() -> Self {
        AdvisorConstants {
            hit_ns: 4.0,
            ibs: BackendCost {
                unit_stab_ns: 18.0,
                unit_insert_ns: 150.0,
                unit_delete_ns: 150.0,
            },
            skiplist: BackendCost {
                unit_stab_ns: 30.0,
                unit_insert_ns: 110.0,
                unit_delete_ns: 110.0,
            },
            interval_tree: BackendCost {
                unit_stab_ns: 14.0,
                unit_insert_ns: 60.0,
                unit_delete_ns: 60.0,
            },
            naive: BackendCost {
                unit_stab_ns: 1.5,
                unit_insert_ns: 25.0,
                unit_delete_ns: 2.0,
            },
        }
    }
}

/// One backend's projected window cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendProjection {
    pub backend: Backend,
    pub projected_nanos: f64,
}

/// The advisor's verdict for one `(relation, attribute)` account.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    pub relation: String,
    pub attr: usize,
    /// Live predicates under this attribute at sample time.
    pub live: u64,
    /// Window op mix.
    pub stabs: u64,
    pub inserts: u64,
    pub deletes: u64,
    /// Mean ids reported per stab (observed overlap).
    pub mean_hits: f64,
    /// Live non-indexable predicates / total live on this relation —
    /// high values mean no backend choice helps much.
    pub non_indexable_share: f64,
    /// Backends by ascending projected cost.
    pub ranked: Vec<BackendProjection>,
    /// Estimated crossover margin: second-cheapest over cheapest
    /// projected cost (1.0 means a dead heat).
    pub margin: f64,
}

impl Recommendation {
    /// The projected-cheapest backend.
    pub fn best(&self) -> Backend {
        self.ranked.first().map_or(Backend::Ibs, |p| p.backend)
    }

    /// The backend the index actually runs today.
    pub fn current(&self) -> Backend {
        Backend::Ibs
    }
}

/// Projects per-backend cost from observed workload accounts and emits
/// ranked recommendations; see the module docs for the model.
#[derive(Debug, Clone)]
pub struct Advisor {
    workload: WorkloadStats,
    constants: AdvisorConstants,
    reports: Counter,
}

impl Advisor {
    /// An advisor over `workload` with the default constants.
    pub fn new(workload: WorkloadStats) -> Advisor {
        Advisor::with_constants(workload, AdvisorConstants::default())
    }

    /// An advisor with explicit (e.g. freshly calibrated) constants.
    pub fn with_constants(workload: WorkloadStats, constants: AdvisorConstants) -> Advisor {
        let reports = workload.registry().counter("advisor_reports_total");
        Advisor {
            workload,
            constants,
            reports,
        }
    }

    /// The constants in use.
    pub fn constants(&self) -> &AdvisorConstants {
        &self.constants
    }

    /// The workload accounts this advisor reads.
    pub fn workload(&self) -> &WorkloadStats {
        &self.workload
    }

    /// Samples a fresh workload window (each report is a window
    /// boundary, so back-to-back reports see rates, not lifetime
    /// averages), rolls up the ring, and prices every observed
    /// attribute. Sorted by relation then attribute.
    pub fn recommendations(&self) -> Vec<Recommendation> {
        self.workload.sample_window();
        let summary = self.workload.summary();
        self.reports.inc();
        self.recommend_from(&summary)
    }

    /// The pure projection step, usable on any summary (tests).
    fn recommend_from(&self, summary: &WorkloadSummary) -> Vec<Recommendation> {
        summary
            .attrs
            .iter()
            .map(|a| {
                let relation_live: u64 = summary
                    .attrs
                    .iter()
                    .filter(|b| b.relation == a.relation)
                    .map(|b| b.live_total())
                    .sum();
                let non_indexable = summary
                    .relations
                    .iter()
                    .find(|r| r.relation == a.relation)
                    .map_or(0, |r| r.live_non_indexable);
                let denom = (relation_live + non_indexable) as f64;
                let share = if denom > 0.0 {
                    non_indexable as f64 / denom
                } else {
                    0.0
                };

                let n = a.live_total() as f64;
                let hits = a.mean_hits();
                let (s, i, d) = (a.stabs as f64, a.inserts() as f64, a.deletes() as f64);
                let mut ranked: Vec<BackendProjection> = Backend::ALL
                    .iter()
                    .map(|&b| {
                        let c = self.constants.cost(b);
                        let projected_nanos = s
                            * (c.unit_stab_ns * b.stab_units(n) + self.constants.hit_ns * hits)
                            + i * c.unit_insert_ns * b.insert_units(n)
                            + d * c.unit_delete_ns * b.delete_units(n);
                        BackendProjection {
                            backend: b,
                            projected_nanos,
                        }
                    })
                    .collect();
                ranked.sort_by(|x, y| x.projected_nanos.total_cmp(&y.projected_nanos));
                let margin = match &ranked[..] {
                    [best, second, ..] if best.projected_nanos > 0.0 => {
                        second.projected_nanos / best.projected_nanos
                    }
                    _ => 1.0,
                };
                Recommendation {
                    relation: a.relation.clone(),
                    attr: a.attr,
                    live: a.live_total(),
                    stabs: a.stabs,
                    inserts: a.inserts(),
                    deletes: a.deletes(),
                    mean_hits: hits,
                    non_indexable_share: share,
                    ranked,
                    margin,
                }
            })
            .collect()
    }

    /// The `telemetry/advisor-v1` JSON document served at `/advisor`.
    pub fn report_json(&self) -> String {
        let recs = self.recommendations();
        let summary = self.workload.summary();
        let mut out = String::with_capacity(512);
        out.push_str("{\"schema\":\"telemetry/advisor-v1\"");
        out.push_str(&format!(
            ",\"windowed\":{},\"windows\":{},\"elapsed_nanos\":{}",
            summary.windowed, summary.windows, summary.elapsed_nanos
        ));
        out.push_str(",\"recommendations\":[");
        for (i, r) in recs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"relation\":\"{}\",\"attr\":{},\"live\":{},\"stabs\":{},\
                 \"inserts\":{},\"deletes\":{},\"mean_hits\":{:.2},\
                 \"non_indexable_share\":{:.3},\"current\":\"{}\",\"best\":\"{}\",\
                 \"margin\":{:.2},\"ranked\":[",
                escape_json(&r.relation),
                r.attr,
                r.live,
                r.stabs,
                r.inserts,
                r.deletes,
                r.mean_hits,
                r.non_indexable_share,
                r.current().name(),
                r.best().name(),
                r.margin,
            ));
            for (j, p) in r.ranked.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"backend\":\"{}\",\"projected_nanos\":{:.1}}}",
                    p.backend.name(),
                    p.projected_nanos
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"relations\":[");
        for (i, r) in summary.relations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"relation\":\"{}\",\"tuples\":{},\"live_non_indexable\":{}}}",
                escape_json(&r.relation),
                r.tuples,
                r.live_non_indexable
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Human-readable report (`:advise`, flight-recorder section).
    pub fn render_text(&self) -> String {
        let recs = self.recommendations();
        let summary = self.workload.summary();
        let mut out = String::new();
        if summary.windowed {
            out.push_str(&format!(
                "index advisor: {} window(s), {:.2}s observed\n",
                summary.windows,
                summary.elapsed_nanos as f64 / 1e9
            ));
        } else {
            out.push_str("index advisor: lifetime totals (no windows sampled)\n");
        }
        if recs.is_empty() {
            out.push_str("  (no per-attribute workload observed yet)\n");
            return out;
        }
        for r in &recs {
            out.push_str(&format!(
                "  {}.attr{}: live={} stabs={} ins={} del={} hits/stab={:.2} non_indexable={:.0}%\n",
                r.relation,
                r.attr,
                r.live,
                r.stabs,
                r.inserts,
                r.deletes,
                r.mean_hits,
                r.non_indexable_share * 100.0
            ));
            for (rank, p) in r.ranked.iter().enumerate() {
                let marker = if rank == 0 { "->" } else { "  " };
                out.push_str(&format!(
                    "    {marker} {}. {:<13} {:>14.0} ns projected\n",
                    rank + 1,
                    p.backend.name(),
                    p.projected_nanos
                ));
            }
            out.push_str(&format!(
                "    recommendation: {} (current {}), margin {:.2}x\n",
                r.best().name(),
                r.current().name(),
                r.margin
            ));
        }
        out
    }

    /// `# advisor ...` comment lines appended to `/metrics` — one line
    /// per attribute, `#`-prefixed so scrapers skip them.
    pub fn metrics_comment_lines(&self) -> String {
        let mut out = String::new();
        for r in self.recommendations() {
            out.push_str(&format!(
                "# advisor {}.{} best={} current={} margin={:.2}x live={} stabs={} ins={} del={}\n",
                r.relation,
                r.attr,
                r.best().name(),
                r.current().name(),
                r.margin,
                r.live,
                r.stabs,
                r.inserts,
                r.deletes
            ));
        }
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Validation harness: op logs, calibration, and measured replay.
// ---------------------------------------------------------------------

/// One operation of a recorded single-attribute workload, replayable
/// both through the real [`PredicateIndex`](crate::PredicateIndex) (to
/// feed the workload accounts) and against each raw backend (to
/// measure true cost).
#[derive(Debug, Clone)]
pub enum WorkloadOp {
    /// Register a predicate whose indexed clause is `interval`;
    /// `source` is the equivalent predicate text for the real index.
    Insert {
        id: IntervalId,
        interval: Interval<Value>,
        source: String,
    },
    /// Unregister the predicate inserted under `id`.
    Delete { id: IntervalId },
    /// Match one tuple whose indexed attribute equals `value`.
    Stab { value: Value },
}

/// A canonical single-attribute workload shape: a setup population
/// (excluded from the measured window) plus the window's op log.
#[derive(Debug, Clone)]
pub struct ShapeSpec {
    pub name: &'static str,
    /// Predicates live before the window opens.
    pub setup: Vec<(IntervalId, Interval<Value>)>,
    /// Opaque (non-indexable) predicates registered during setup.
    pub non_indexable: usize,
    /// The measured window.
    pub ops: Vec<WorkloadOp>,
}

fn closed(lo: i64, hi: i64) -> Interval<Value> {
    Interval::closed(Value::Int(lo), Value::Int(hi))
}

fn source_for(lo: i64, hi: i64) -> String {
    format!("{lo} <= emp.a <= {hi}")
}

/// Deterministic LCG so shapes are identical across runs and machines.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Stab-heavy: a large static population read hard and never churned —
/// the regime where a bulk-built static structure earns its keep.
/// `scale` 250 is the committed bench size (2000 live, 5000 stabs).
pub fn stab_heavy_shape(scale: usize) -> ShapeSpec {
    let n = 8 * scale;
    let setup: Vec<(IntervalId, Interval<Value>)> = (0..n)
        .map(|i| {
            let lo = 4 * i as i64;
            (IntervalId(i as u32), closed(lo, lo + 40))
        })
        .collect();
    let mut rng = Lcg(0x5eed_0001);
    let span = 4 * n as i64 + 40;
    let ops = (0..20 * scale)
        .map(|_| WorkloadOp::Stab {
            value: Value::Int((rng.next() % span as u64) as i64),
        })
        .collect();
    ShapeSpec {
        name: "stab_heavy",
        setup,
        non_indexable: 0,
        ops,
    }
}

/// Churn-heavy: a small population with relentless insert/delete
/// traffic and rare stabs — O(1) list insertion beats any tree, and a
/// rebuild-per-mutation static structure is hopeless. `scale` 300 is
/// the committed bench size (300 live, 900 insert/delete pairs).
pub fn churn_heavy_shape(scale: usize) -> ShapeSpec {
    let n = scale;
    let width = 20i64;
    let setup: Vec<(IntervalId, Interval<Value>)> = (0..n)
        .map(|i| {
            let lo = 7 * i as i64;
            (IntervalId(i as u32), closed(lo, lo + width))
        })
        .collect();
    let mut rng = Lcg(0x5eed_0002);
    let span = 7 * n as i64 + width;
    let mut ops = Vec::new();
    for k in 0..3 * n {
        let lo = (rng.next() % span as u64) as i64;
        ops.push(WorkloadOp::Insert {
            id: IntervalId((n + k) as u32),
            interval: closed(lo, lo + width),
            source: source_for(lo, lo + width),
        });
        // FIFO delete keeps the live population pinned at n.
        ops.push(WorkloadOp::Delete {
            id: IntervalId(k as u32),
        });
        if k % 30 == 0 {
            ops.push(WorkloadOp::Stab {
                value: Value::Int((rng.next() % span as u64) as i64),
            });
        }
    }
    ShapeSpec {
        name: "churn_heavy",
        setup,
        non_indexable: 0,
        ops,
    }
}

/// Non-indexable-heavy: almost every predicate is an opaque function
/// the index can't help with — match cost is dominated by the residual
/// scan no backend choice affects. The indexable population is a
/// handful of churned intervals, so among the backends the O(1)-insert
/// list wins and any tree's rebalancing/rebuild work is pure loss.
/// `scale` 200 is the committed bench size (4 indexable + 200 opaque,
/// 2000 stabs, 400 insert/delete pairs).
pub fn non_indexable_heavy_shape(scale: usize) -> ShapeSpec {
    let setup: Vec<(IntervalId, Interval<Value>)> = (0..4)
        .map(|i| {
            let lo = 100 * i as i64;
            (IntervalId(i as u32), closed(lo, lo + 50))
        })
        .collect();
    let mut rng = Lcg(0x5eed_0003);
    let mut ops = Vec::new();
    let mut next_id = 1_000u32;
    for k in 0..10 * scale {
        ops.push(WorkloadOp::Stab {
            value: Value::Int((rng.next() % 400) as i64),
        });
        if k % 5 == 2 {
            // The opaque predicates come and go; so do their rare
            // indexable companions. At four live intervals a scan is
            // free while every tree still pays its mutation costs.
            let lo = (rng.next() % 400) as i64;
            ops.push(WorkloadOp::Insert {
                id: IntervalId(next_id),
                interval: closed(lo, lo + 10),
                source: source_for(lo, lo + 10),
            });
            ops.push(WorkloadOp::Delete {
                id: IntervalId(next_id),
            });
            next_id += 1;
        }
    }
    ShapeSpec {
        name: "non_indexable_heavy",
        setup,
        non_indexable: scale,
        ops,
    }
}

/// The three committed bench shapes at full scale.
pub fn bench_shapes() -> Vec<ShapeSpec> {
    vec![
        stab_heavy_shape(250),
        churn_heavy_shape(300),
        non_indexable_heavy_shape(200),
    ]
}

/// The same shapes scaled down for quick runs and the integration test.
pub fn quick_shapes() -> Vec<ShapeSpec> {
    vec![
        stab_heavy_shape(60),
        churn_heavy_shape(80),
        non_indexable_heavy_shape(50),
    ]
}

fn calibration_intervals(n: usize) -> Vec<(IntervalId, Interval<Value>)> {
    // Disjoint intervals ([10i+1, 10i+5]) probed between the gaps, so
    // the stab term is measured with a near-zero hit term.
    (0..n)
        .map(|i| {
            let lo = 10 * i as i64 + 1;
            (IntervalId(i as u32), closed(lo, lo + 4))
        })
        .collect()
}

fn calibration_points(n: usize, m: usize) -> Vec<Value> {
    let mut rng = Lcg(0xca11_b8a7e);
    (0..m)
        .map(|_| Value::Int(10 * (rng.next() % n as u64) as i64 + 8))
        .collect()
}

/// Sum of `f(i)` for the live population growing 0..n (insert order).
fn growth_units(n: usize, f: impl Fn(f64) -> f64) -> f64 {
    (0..n).map(|i| f(i as f64)).sum()
}

/// Times `f` as a whole, `runs` times; returns the last value and the
/// fastest wall-clock — for closures whose entire body is the measured
/// region.
fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best_ns = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let v = f();
        let ns = t0.elapsed().as_nanos() as f64;
        if ns < best_ns {
            best_ns = ns;
        }
        last = Some(v);
    }
    // srclint:allow(no-panic-in-lib): runs >= 1 always produces a value
    (last.expect("at least one run"), best_ns)
}

/// Minimum of `runs` self-timed measurements — for closures that do
/// untimed setup and return only their measured region's nanoseconds.
fn min_of(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        best = best.min(f());
    }
    best
}

fn calibrate_dynamic<T: DynamicStabIndex<Value>>(
    backend: Backend,
    mk: impl Fn() -> T,
    n: usize,
    stabs: usize,
) -> BackendCost {
    let items = calibration_intervals(n);
    let points = calibration_points(n, stabs);

    let (built, insert_ns) = best_of(3, || {
        let mut idx = mk();
        for (id, iv) in &items {
            idx.insert(*id, iv.clone());
        }
        idx
    });
    let unit_insert_ns = insert_ns / growth_units(n, |i| backend.insert_units(i));

    let (_, stab_ns) = best_of(3, || {
        let mut scratch = Vec::new();
        for p in &points {
            scratch.clear();
            built.stab_into(p, &mut scratch);
        }
    });
    let unit_stab_ns = stab_ns / (stabs as f64 * backend.stab_units(n as f64));

    // Remove in a scrambled order so the naive list's scan distance
    // averages out the way the n/2 model assumes.
    let mut order: Vec<IntervalId> = items.iter().map(|(id, _)| *id).collect();
    let mut rng = Lcg(0xdead_beef);
    for i in (1..order.len()).rev() {
        order.swap(i, (rng.next() % (i as u64 + 1)) as usize);
    }
    let delete_ns = min_of(3, || {
        let mut idx = mk();
        for (id, iv) in &items {
            idx.insert(*id, iv.clone());
        }
        let t0 = Instant::now();
        for id in &order {
            idx.remove(*id);
        }
        t0.elapsed().as_nanos() as f64
    });
    let unit_delete_ns = delete_ns / growth_units(n, |i| backend.delete_units(i + 1.0)).max(1.0);

    BackendCost {
        unit_stab_ns,
        unit_insert_ns,
        unit_delete_ns,
    }
}

fn calibrate_interval_tree(n: usize, stabs: usize) -> BackendCost {
    let items = calibration_intervals(n);
    let points = calibration_points(n, stabs);
    let (built, build_ns) = best_of(3, || CenteredIntervalTree::build(items.clone()));
    // One rebuild over n items: the per-item build constant prices both
    // "insert" (rebuild at n+1) and "delete" (rebuild at n-1).
    let per_item = build_ns / n as f64;
    let (_, stab_ns) = best_of(3, || {
        let mut scratch = Vec::new();
        for p in &points {
            scratch.clear();
            built.stab_into(p, &mut scratch);
        }
    });
    BackendCost {
        unit_stab_ns: stab_ns / (stabs as f64 * Backend::IntervalTree.stab_units(n as f64)),
        unit_insert_ns: per_item,
        unit_delete_ns: per_item,
    }
}

/// Micro-benchmarks every backend in-process and solves for the unit
/// constants of the module's cost model, so projections and
/// measurements share one machine and one build. Takes ~100ms.
pub fn calibrate_constants() -> AdvisorConstants {
    const N: usize = 512;
    const STABS: usize = 2_000;
    AdvisorConstants {
        hit_ns: AdvisorConstants::default().hit_ns,
        ibs: calibrate_dynamic(Backend::Ibs, IbsTree::<Value>::new, N, STABS),
        skiplist: calibrate_dynamic(Backend::SkipList, IntervalSkipList::<Value>::new, N, STABS),
        interval_tree: calibrate_interval_tree(N, STABS),
        naive: calibrate_dynamic(
            Backend::Naive,
            altindex::NaiveIntervalList::<Value>::new,
            N,
            STABS,
        ),
    }
}

fn replay_dynamic<T: DynamicStabIndex<Value>>(
    mk: impl Fn() -> T,
    setup: &[(IntervalId, Interval<Value>)],
    ops: &[WorkloadOp],
) -> f64 {
    min_of(2, || {
        let mut idx = mk();
        for (id, iv) in setup {
            idx.insert(*id, iv.clone());
        }
        let mut scratch = Vec::new();
        let t0 = Instant::now();
        for op in ops {
            match op {
                WorkloadOp::Insert { id, interval, .. } => idx.insert(*id, interval.clone()),
                WorkloadOp::Delete { id } => {
                    idx.remove(*id);
                }
                WorkloadOp::Stab { value } => {
                    scratch.clear();
                    idx.stab_into(value, &mut scratch);
                }
            }
        }
        t0.elapsed().as_nanos() as f64
    })
}

fn replay_interval_tree(setup: &[(IntervalId, Interval<Value>)], ops: &[WorkloadOp]) -> f64 {
    min_of(2, || {
        let mut items = setup.to_vec();
        let mut tree = CenteredIntervalTree::build(items.clone());
        let mut scratch = Vec::new();
        let t0 = Instant::now();
        for op in ops {
            match op {
                WorkloadOp::Insert { id, interval, .. } => {
                    items.push((*id, interval.clone()));
                    tree = CenteredIntervalTree::build(items.clone());
                }
                WorkloadOp::Delete { id } => {
                    items.retain(|(i, _)| i != id);
                    tree = CenteredIntervalTree::build(items.clone());
                }
                WorkloadOp::Stab { value } => {
                    scratch.clear();
                    tree.stab_into(value, &mut scratch);
                }
            }
        }
        t0.elapsed().as_nanos() as f64
    })
}

/// Replays `ops` (after an untimed `setup` load) against each real
/// backend and returns measured window cost, ascending — the ground
/// truth the advisor's projection is validated against. Each backend
/// runs best-of-2, timing the replay loop only (setup excluded).
pub fn measure_backends(
    setup: &[(IntervalId, Interval<Value>)],
    ops: &[WorkloadOp],
) -> Vec<(Backend, f64)> {
    let mut measured = vec![
        (
            Backend::Ibs,
            replay_dynamic(IbsTree::<Value>::new, setup, ops),
        ),
        (
            Backend::SkipList,
            replay_dynamic(IntervalSkipList::<Value>::new, setup, ops),
        ),
        (Backend::IntervalTree, replay_interval_tree(setup, ops)),
        (
            Backend::Naive,
            replay_dynamic(altindex::NaiveIntervalList::<Value>::new, setup, ops),
        ),
    ];
    measured.sort_by(|a, b| a.1.total_cmp(&b.1));
    measured
}

/// The outcome of driving one shape end-to-end: the advisor's ranked
/// projection (via real workload accounts on a real index) next to the
/// measured per-backend cost.
#[derive(Debug, Clone)]
pub struct ShapeOutcome {
    pub name: &'static str,
    pub recommendation: Recommendation,
    /// Measured window cost per backend, ascending.
    pub measured: Vec<(Backend, f64)>,
}

impl ShapeOutcome {
    /// The measured-cheapest backend.
    pub fn measured_cheapest(&self) -> Backend {
        self.measured.first().map_or(Backend::Ibs, |m| m.0)
    }

    /// Did the advisor's top pick match the measured-cheapest backend?
    pub fn agree(&self) -> bool {
        self.recommendation.best() == self.measured_cheapest()
    }
}

/// Drives `spec` through a real [`PredicateIndex`](crate::PredicateIndex)
/// with workload accounts attached (setup excluded from the sampled
/// window), asks an [`Advisor`] with `constants` for its ranking, then
/// replays the same window against every raw backend. This is the
/// whole pipeline under test: record → window → project → compare.
pub fn run_shape(spec: &ShapeSpec, constants: &AdvisorConstants) -> ShapeOutcome {
    let mut db = Database::new();
    db.create_relation(Schema::builder("emp").attr("a", AttrType::Int).build())
        // srclint:allow(no-panic-in-lib): fresh database, the schema cannot collide
        .expect("fresh schema");
    let registry = Arc::new(Registry::new());
    let workload = WorkloadStats::new(&registry);
    let mut index = crate::PredicateIndex::new();
    index.attach_workload(workload.clone());

    fn register(
        index: &mut crate::PredicateIndex,
        db: &Database,
        ids: &mut relation::fx::FnvHashMap<u32, crate::PredicateId>,
        id: IntervalId,
        source: &str,
    ) {
        let pred = predicate::parse_predicate(source)
            // srclint:allow(no-panic-in-lib): shape sources are generated by this module and always parse
            .expect("generated predicate parses");
        let pid = index
            .insert(pred, db.catalog())
            // srclint:allow(no-panic-in-lib): generated predicates bind against the generated schema
            .expect("generated predicate binds");
        ids.insert(id.0, pid);
    }
    let mut ids = relation::fx::FnvHashMap::default();
    for (id, iv) in &spec.setup {
        let (lo, hi) = int_bounds(iv);
        register(&mut index, &db, &mut ids, *id, &source_for(lo, hi));
    }
    for _ in 0..spec.non_indexable {
        let pred = predicate::parse_predicate("isodd(emp.a)")
            // srclint:allow(no-panic-in-lib): constant source always parses
            .expect("opaque predicate parses");
        index
            .insert(pred, db.catalog())
            // srclint:allow(no-panic-in-lib): opaque predicates always bind
            .expect("opaque predicate binds");
    }
    // Rebase the window clock so the advisor sees only the op log,
    // not the setup load.
    workload.rebase();

    let mut scratch = Vec::new();
    for op in &spec.ops {
        match op {
            WorkloadOp::Insert { id, source, .. } => {
                register(&mut index, &db, &mut ids, *id, source)
            }
            WorkloadOp::Delete { id } => {
                let pid = ids
                    .remove(&id.0)
                    // srclint:allow(no-panic-in-lib): shape op logs only delete previously inserted ids
                    .expect("deleted id was inserted");
                index.remove(pid);
            }
            WorkloadOp::Stab { value } => {
                scratch.clear();
                index.match_tuple_into("emp", &Tuple::new(vec![value.clone()]), &mut scratch);
            }
        }
    }

    let advisor = Advisor::with_constants(workload, *constants);
    let recs = advisor.recommendations();
    let recommendation = recs
        .into_iter()
        .find(|r| r.relation == "emp" && r.attr == 0)
        // srclint:allow(no-panic-in-lib): every shape stabs or inserts on emp.a, so the account exists
        .expect("emp.a account observed");
    let measured = measure_backends(&spec.setup, &spec.ops);
    ShapeOutcome {
        name: spec.name,
        recommendation,
        measured,
    }
}

fn int_bounds(iv: &Interval<Value>) -> (i64, i64) {
    let lo = match iv.lo().value() {
        Some(Value::Int(v)) => *v,
        _ => 0,
    };
    let hi = match iv.hi().value() {
        Some(Value::Int(v)) => *v,
        _ => lo,
    };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::ClauseShape;

    fn summary_with(attrs: Vec<telemetry::AttrUsage>) -> WorkloadSummary {
        WorkloadSummary {
            windowed: true,
            windows: 1,
            elapsed_nanos: 1,
            attrs,
            relations: Vec::new(),
        }
    }

    fn usage(stabs: u64, hits: u64, inserts: u64, deletes: u64, live: u64) -> telemetry::AttrUsage {
        telemetry::AttrUsage {
            relation: "emp".into(),
            attr: 0,
            stabs,
            stab_hits: hits,
            shape_inserts: [0, 0, 0, inserts],
            shape_deletes: [0, 0, 0, deletes],
            live: [0, 0, 0, live],
            length_count: 0,
            length_sum: 0,
            p50_length: 0,
            p99_overlap: 0,
        }
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(
            Backend::ALL.map(|b| b.name()),
            ["ibs", "skiplist", "interval_tree", "naive"]
        );
        assert_eq!(Backend::SkipList.to_string(), "skiplist");
    }

    #[test]
    fn stab_heavy_projection_penalises_the_naive_scan() {
        let advisor = Advisor::new(WorkloadStats::disabled());
        let recs = advisor.recommend_from(&summary_with(vec![usage(10_000, 1_000, 0, 0, 4_000)]));
        let rec = &recs[0];
        // With 4k live predicates a linear scan per stab must rank last.
        assert_eq!(rec.ranked.last().unwrap().backend, Backend::Naive);
        // No mutations: the static structure's rebuild penalty never
        // bites, so it must beat the naive list at least.
        assert!(rec.margin >= 1.0);
        assert_eq!(rec.live, 4_000);
    }

    #[test]
    fn churn_heavy_projection_penalises_the_static_rebuild() {
        let advisor = Advisor::new(WorkloadStats::disabled());
        let recs = advisor.recommend_from(&summary_with(vec![usage(10, 5, 3_000, 3_000, 300)]));
        let rec = &recs[0];
        assert_eq!(rec.ranked.last().unwrap().backend, Backend::IntervalTree);
        // O(1) inserts + tiny stab traffic: the naive list wins.
        assert_eq!(rec.best(), Backend::Naive);
        assert_eq!(rec.current(), Backend::Ibs);
    }

    #[test]
    fn tiny_population_prefers_the_naive_scan() {
        let advisor = Advisor::new(WorkloadStats::disabled());
        let recs = advisor.recommend_from(&summary_with(vec![usage(5_000, 100, 0, 0, 4)]));
        assert_eq!(recs[0].best(), Backend::Naive);
    }

    #[test]
    fn report_json_shape() {
        let registry = Arc::new(Registry::new());
        let workload = WorkloadStats::new(&registry);
        workload.record_insert("emp", 0, ClauseShape::Interval, Some(40));
        workload.record_stab("emp", 0, 1);
        workload.record_tuple("emp");
        let advisor = Advisor::new(workload);
        let json = advisor.report_json();
        for needle in [
            "\"schema\":\"telemetry/advisor-v1\"",
            "\"relation\":\"emp\"",
            "\"attr\":0",
            "\"current\":\"ibs\"",
            "\"ranked\":[",
            "\"projected_nanos\":",
            "\"relations\":[",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Each report samples a window and counts itself.
        assert_eq!(registry.counter_value("advisor_reports_total"), Some(1));
        assert!(registry
            .counter_value("workload_windows_sampled_total")
            .is_some_and(|v| v >= 1));
    }

    #[test]
    fn render_text_and_comments_mention_the_pick() {
        let registry = Arc::new(Registry::new());
        let workload = WorkloadStats::new(&registry);
        for _ in 0..10 {
            workload.record_stab("emp", 0, 0);
        }
        workload.record_insert("emp", 0, ClauseShape::Eq, Some(0));
        let advisor = Advisor::new(workload);
        let text = advisor.render_text();
        assert!(text.contains("index advisor"));
        assert!(text.contains("emp.attr0"));
        assert!(text.contains("recommendation:"));
        let comments = advisor.metrics_comment_lines();
        for line in comments.lines() {
            assert!(line.starts_with("# advisor "), "unprefixed line {line:?}");
        }
        assert!(comments.contains("best="));
    }

    #[test]
    fn empty_workload_yields_empty_report() {
        let advisor = Advisor::new(WorkloadStats::disabled());
        assert!(advisor.recommendations().is_empty());
        let json = advisor.report_json();
        assert!(json.contains("\"recommendations\":[]"));
        assert!(advisor.render_text().contains("no per-attribute workload"));
        assert!(advisor.metrics_comment_lines().is_empty());
    }

    #[test]
    fn shapes_are_deterministic() {
        let a = stab_heavy_shape(10);
        let b = stab_heavy_shape(10);
        assert_eq!(a.setup.len(), b.setup.len());
        assert_eq!(a.ops.len(), b.ops.len());
        let (Some(WorkloadOp::Stab { value: va }), Some(WorkloadOp::Stab { value: vb })) =
            (a.ops.first(), b.ops.first())
        else {
            panic!("stab-heavy opens with stabs");
        };
        assert_eq!(va, vb);
        // Churn keeps the live population pinned at n.
        let churn = churn_heavy_shape(20);
        let ins = churn
            .ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Insert { .. }))
            .count();
        let del = churn
            .ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Delete { .. }))
            .count();
        assert_eq!(ins, del);
    }

    #[test]
    fn measure_backends_covers_every_backend() {
        let spec = stab_heavy_shape(4);
        let measured = measure_backends(&spec.setup, &spec.ops);
        assert_eq!(measured.len(), Backend::ALL.len());
        // Ascending order.
        for pair in measured.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        for b in Backend::ALL {
            assert!(measured.iter().any(|(m, _)| *m == b));
        }
    }

    #[test]
    fn run_shape_feeds_real_workload_accounts() {
        let spec = non_indexable_heavy_shape(10);
        let outcome = run_shape(&spec, &AdvisorConstants::default());
        let rec = &outcome.recommendation;
        assert_eq!(rec.relation, "emp");
        assert_eq!(rec.attr, 0);
        assert_eq!(rec.stabs, 100);
        // 10 opaque vs 4 indexable live predicates.
        assert!(rec.non_indexable_share > 0.5, "{}", rec.non_indexable_share);
        assert_eq!(outcome.measured.len(), 4);
    }
}
