//! Introspection over a [`PredicateIndex`] or
//! [`ShardedPredicateIndex`]: the Figure 1 structure as live
//! diagnostics. Useful for operators ("why is matching slow on this
//! relation?", "are my shards balanced?") and for the benchmark
//! harness's space reporting.

use crate::index::PredicateIndex;
use crate::sharded::ShardedPredicateIndex;
use std::fmt;

/// Per-attribute-tree diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeStats {
    /// Schema position of the attribute.
    pub attr: usize,
    /// Predicates indexed under this attribute.
    pub intervals: usize,
    /// Endpoint nodes in the IBS-tree.
    pub nodes: usize,
    /// Total marks (the §5.1 space metric).
    pub markers: usize,
    /// Tree height.
    pub height: u32,
}

/// Per-relation diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStats {
    pub relation: String,
    /// One entry per attribute with an IBS-tree, ordered by attribute.
    pub trees: Vec<TreeStats>,
    /// Predicates on the non-indexable list.
    pub non_indexable: usize,
}

/// Whole-index diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// One entry per relation with registered predicates, sorted by
    /// relation name.
    pub relations: Vec<RelationStats>,
    /// Total registered predicates (including unsatisfiable ones, which
    /// live only in the PREDICATES table).
    pub predicates: usize,
}

impl IndexStats {
    /// Total marks across every tree.
    pub fn total_markers(&self) -> usize {
        self.relations
            .iter()
            .flat_map(|r| &r.trees)
            .map(|t| t.markers)
            .sum()
    }

    /// Total IBS-trees.
    pub fn total_trees(&self) -> usize {
        self.relations.iter().map(|r| r.trees.len()).sum()
    }
}

impl fmt::Display for IndexStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "predicate index: {} predicates, {} trees, {} markers",
            self.predicates,
            self.total_trees(),
            self.total_markers()
        )?;
        for r in &self.relations {
            writeln!(f, "  {} ({} non-indexable)", r.relation, r.non_indexable)?;
            for t in &r.trees {
                writeln!(
                    f,
                    "    attr #{}: {} intervals, {} nodes, {} markers, height {}",
                    t.attr, t.intervals, t.nodes, t.markers, t.height
                )?;
            }
        }
        Ok(())
    }
}

/// Per-shard diagnostics for a [`ShardedPredicateIndex`]: which
/// relations a shard owns and how much structure sits behind its lock.
/// A heavily skewed `predicates` distribution means most write traffic
/// contends on one lock (reads still scale: `RwLock` admits parallel
/// readers).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard number (`0..shard_count`).
    pub shard: usize,
    /// Predicates stored in this shard (including unsatisfiable ones).
    pub predicates: usize,
    /// This shard's predicate count relative to the per-shard mean:
    /// 1.0 everywhere is a perfectly balanced index, `shard_count` is
    /// the worst case (every predicate behind one lock), and 0.0 is an
    /// idle shard. A completely empty index is trivially balanced, so
    /// every shard reports 1.0 rather than a 0/0 skew ratio.
    pub imbalance: f64,
    /// Relations hashed to this shard, sorted by name.
    pub relations: Vec<RelationStats>,
}

impl fmt::Display for ShardStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {}: {} predicates ({:.2}x mean), {} relations",
            self.shard,
            self.predicates,
            self.imbalance,
            self.relations.len()
        )
    }
}

fn relation_stats(name: &str, ri: &crate::index::RelationIndex) -> RelationStats {
    let mut trees: Vec<TreeStats> = ri
        .attr_trees_iter()
        .map(|(attr, tree)| TreeStats {
            attr,
            intervals: tree.len(),
            nodes: tree.node_count(),
            markers: tree.marker_count(),
            height: tree.height(),
        })
        .collect();
    trees.sort_by_key(|t| t.attr);
    RelationStats {
        relation: name.to_string(),
        trees,
        non_indexable: ri.non_indexable_len(),
    }
}

impl ShardedPredicateIndex {
    /// Per-shard structure snapshot (lock-occupancy diagnostics).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let mut stats = self.with_shards_read(|shard, relations, store| {
            let mut rels: Vec<RelationStats> = relations
                .iter()
                .map(|(name, ri)| relation_stats(name, ri))
                .collect();
            rels.sort_by(|a, b| a.relation.cmp(&b.relation));
            ShardStats {
                shard,
                predicates: store.len(),
                imbalance: 0.0,
                relations: rels,
            }
        });
        let total: usize = stats.iter().map(|s| s.predicates).sum();
        if total > 0 {
            let mean = total as f64 / stats.len() as f64;
            for s in &mut stats {
                s.imbalance = s.predicates as f64 / mean;
            }
        } else {
            // No predicates anywhere: the index is trivially balanced,
            // not infinitely skewed — report the balanced value.
            for s in &mut stats {
                s.imbalance = 1.0;
            }
        }
        stats
    }

    /// Whole-index snapshot in the same shape as
    /// [`PredicateIndex::stats`], merging all shards.
    pub fn stats(&self) -> IndexStats {
        let per_shard = self.shard_stats();
        let predicates = per_shard.iter().map(|s| s.predicates).sum();
        let mut relations: Vec<RelationStats> =
            per_shard.into_iter().flat_map(|s| s.relations).collect();
        relations.sort_by(|a, b| a.relation.cmp(&b.relation));
        IndexStats {
            relations,
            predicates,
        }
    }
}

impl PredicateIndex {
    /// Snapshots the index structure.
    pub fn stats(&self) -> IndexStats {
        let mut relations: Vec<RelationStats> = self
            .relations_iter()
            .map(|(name, ri)| relation_stats(name, ri))
            .collect();
        relations.sort_by(|a, b| a.relation.cmp(&b.relation));
        IndexStats {
            relations,
            predicates: crate::Matcher::len(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matcher;
    use predicate::parse_predicate;
    use relation::{AttrType, Database, Schema};

    #[test]
    fn stats_reflect_structure() {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        let mut index = PredicateIndex::new();
        index
            .insert(parse_predicate("emp.age > 30").unwrap(), db.catalog())
            .unwrap();
        index
            .insert(parse_predicate("emp.age < 20").unwrap(), db.catalog())
            .unwrap();
        index
            .insert(parse_predicate("emp.salary = 100").unwrap(), db.catalog())
            .unwrap();
        index
            .insert(parse_predicate("isodd(emp.age)").unwrap(), db.catalog())
            .unwrap();

        let s = index.stats();
        assert_eq!(s.predicates, 4);
        assert_eq!(s.relations.len(), 1);
        let r = &s.relations[0];
        assert_eq!(r.relation, "emp");
        assert_eq!(r.non_indexable, 1);
        assert_eq!(r.trees.len(), 2);
        assert_eq!(r.trees[0].attr, 0);
        assert_eq!(r.trees[0].intervals, 2);
        assert_eq!(r.trees[1].attr, 1);
        assert_eq!(r.trees[1].intervals, 1);
        assert!(s.total_markers() > 0);

        let text = s.to_string();
        assert!(text.contains("4 predicates"));
        assert!(text.contains("emp (1 non-indexable)"));
    }

    #[test]
    fn sharded_stats_merge_shards() {
        let mut db = Database::new();
        for name in ["emp", "dept", "proj"] {
            db.create_relation(Schema::builder(name).attr("a", AttrType::Int).build())
                .unwrap();
        }
        let sharded = crate::ShardedPredicateIndex::with_shards(4);
        for (rel, lo) in [("emp", 1), ("emp", 2), ("dept", 3), ("proj", 4)] {
            sharded
                .insert_shared(
                    parse_predicate(&format!("{rel}.a > {lo}")).unwrap(),
                    db.catalog(),
                )
                .unwrap();
        }

        let per_shard = sharded.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().map(|s| s.predicates).sum::<usize>(), 4);
        assert!(per_shard[0].to_string().starts_with("shard 0:"));

        let merged = sharded.stats();
        assert_eq!(merged.predicates, 4);
        assert_eq!(
            merged
                .relations
                .iter()
                .map(|r| r.relation.as_str())
                .collect::<Vec<_>>(),
            vec!["dept", "emp", "proj"],
        );
        assert_eq!(merged.total_trees(), 3);
    }

    #[test]
    fn skewed_workload_reports_imbalance() {
        // Every predicate names the same relation, so they all hash to
        // one shard: that shard's imbalance must be the worst case
        // (shard_count x the mean) and every other shard must be idle.
        let mut db = Database::new();
        db.create_relation(Schema::builder("emp").attr("a", AttrType::Int).build())
            .unwrap();
        let sharded = crate::ShardedPredicateIndex::with_shards(4);
        for lo in 0..12 {
            sharded
                .insert_shared(
                    parse_predicate(&format!("emp.a > {lo}")).unwrap(),
                    db.catalog(),
                )
                .unwrap();
        }

        let stats = sharded.shard_stats();
        let hot = stats
            .iter()
            .find(|s| s.predicates == 12)
            .expect("hot shard");
        assert_eq!(hot.imbalance, 4.0);
        for s in &stats {
            if s.shard != hot.shard {
                assert_eq!(s.predicates, 0);
                assert_eq!(s.imbalance, 0.0);
            }
        }
        assert!(hot.to_string().contains("(4.00x mean)"));
    }

    #[test]
    fn balanced_workload_has_unit_imbalance() {
        let mut db = Database::new();
        for name in ["emp", "dept", "proj", "acct"] {
            db.create_relation(Schema::builder(name).attr("a", AttrType::Int).build())
                .unwrap();
        }
        // One shard holds everything when only one shard exists.
        let one = crate::ShardedPredicateIndex::with_shards(1);
        for rel in ["emp", "dept", "proj", "acct"] {
            one.insert_shared(
                parse_predicate(&format!("{rel}.a > 0")).unwrap(),
                db.catalog(),
            )
            .unwrap();
        }
        let stats = one.shard_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].imbalance, 1.0);
    }

    #[test]
    fn empty_index_is_trivially_balanced() {
        // 0 predicates over N shards is perfect balance, not skew:
        // every shard must report the balanced value 1.0.
        let sharded = crate::ShardedPredicateIndex::with_shards(4);
        for s in sharded.shard_stats() {
            assert_eq!(s.predicates, 0);
            assert_eq!(s.imbalance, 1.0);
        }
    }

    #[test]
    fn empty_index_stats() {
        let index = PredicateIndex::new();
        let s = index.stats();
        assert_eq!(s.predicates, 0);
        assert!(s.relations.is_empty());
        assert_eq!(s.total_trees(), 0);
    }
}
