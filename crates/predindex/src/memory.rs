//! Alpha memories: incrementally maintained match sets per predicate.
//!
//! The paper positions its discrimination network as "the first layer of
//! a two-layer network which will test both the selection and the join
//! conditions of rules" (§6) — the Rete/TREAT architecture its
//! introduction surveys. The second layer's input is exactly this
//! module: for every predicate, the set of tuples *currently* matching
//! it (Rete's alpha memory), maintained incrementally from tuple events
//! instead of being recomputed per query.
//!
//! Join processing itself stays out of scope, as in the paper.

use crate::index::PredicateIndex;
use crate::matcher::{Matcher, PredicateId};
use relation::fx::FnvHashMap;
use relation::{TupleEvent, TupleId};
use std::collections::BTreeSet;

/// Current matches per predicate, fed by [`MatchMemory::apply`].
#[derive(Debug, Clone, Default)]
pub struct MatchMemory {
    /// predicate id → sorted set of matching tuple ids (the relation is
    /// implied by the predicate).
    matches: FnvHashMap<u32, BTreeSet<TupleId>>,
}

impl MatchMemory {
    /// An empty memory.
    pub fn new() -> Self {
        MatchMemory::default()
    }

    /// Folds one tuple event into the memory. `index` must be the same
    /// predicate index the events are matched against elsewhere;
    /// updates re-match both the old and the new image of the tuple so
    /// entering and leaving predicates are both maintained.
    pub fn apply(&mut self, index: &PredicateIndex, event: &TupleEvent) {
        match event {
            TupleEvent::Inserted {
                relation,
                id,
                tuple,
            } => {
                for pid in index.match_tuple(relation, tuple) {
                    self.matches.entry(pid.0).or_default().insert(*id);
                }
            }
            TupleEvent::Updated {
                relation,
                id,
                old,
                new,
            } => {
                for pid in index.match_tuple(relation, old) {
                    if let Some(set) = self.matches.get_mut(&pid.0) {
                        set.remove(id);
                    }
                }
                for pid in index.match_tuple(relation, new) {
                    self.matches.entry(pid.0).or_default().insert(*id);
                }
            }
            TupleEvent::Deleted {
                relation,
                id,
                tuple,
            } => {
                for pid in index.match_tuple(relation, tuple) {
                    if let Some(set) = self.matches.get_mut(&pid.0) {
                        set.remove(id);
                    }
                }
            }
        }
    }

    /// Forgets a predicate's memory (call when the predicate is removed
    /// from the index).
    pub fn clear_predicate(&mut self, pred: PredicateId) {
        self.matches.remove(&pred.0);
    }

    /// The tuples currently matching `pred`, ascending by id.
    pub fn matches_of(&self, pred: PredicateId) -> impl Iterator<Item = TupleId> + '_ {
        self.matches
            .get(&pred.0)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of tuples currently matching `pred`.
    pub fn count(&self, pred: PredicateId) -> usize {
        self.matches.get(&pred.0).map_or(0, |s| s.len())
    }

    /// Total `(predicate, tuple)` match pairs held.
    pub fn total_pairs(&self) -> usize {
        self.matches.values().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matcher;
    use predicate::parse_predicate;
    use relation::{AttrType, Database, Schema, Value};

    fn setup() -> (Database, PredicateIndex, Vec<PredicateId>) {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        let mut index = PredicateIndex::new();
        let ids = vec![
            index
                .insert(parse_predicate("emp.salary < 1000").unwrap(), db.catalog())
                .unwrap(),
            index
                .insert(parse_predicate("emp.salary >= 1000").unwrap(), db.catalog())
                .unwrap(),
        ];
        (db, index, ids)
    }

    #[test]
    fn insert_update_delete_maintenance() {
        let (mut db, index, ids) = setup();
        let mut mem = MatchMemory::new();

        let ev = db
            .insert_event("emp", vec![Value::str("al"), Value::Int(500)])
            .unwrap();
        mem.apply(&index, &ev);
        assert_eq!(mem.count(ids[0]), 1);
        assert_eq!(mem.count(ids[1]), 0);
        let relation::TupleEvent::Inserted { id, .. } = ev else {
            panic!("insert event expected")
        };

        // A raise moves the tuple from predicate 0 to predicate 1.
        let ev = db
            .update_event("emp", id, vec![Value::str("al"), Value::Int(5_000)])
            .unwrap();
        mem.apply(&index, &ev);
        assert_eq!(mem.count(ids[0]), 0);
        assert_eq!(mem.count(ids[1]), 1);
        assert_eq!(mem.matches_of(ids[1]).collect::<Vec<_>>(), vec![id]);

        let ev = db.delete_event("emp", id).unwrap();
        mem.apply(&index, &ev);
        assert_eq!(mem.total_pairs(), 0);
    }

    #[test]
    fn memory_tracks_many_tuples_and_agrees_with_rescan() {
        let (mut db, index, ids) = setup();
        let mut mem = MatchMemory::new();
        for i in 0..200i64 {
            let ev = db
                .insert_event("emp", vec![Value::str(format!("e{i}")), Value::Int(i * 13)])
                .unwrap();
            mem.apply(&index, &ev);
        }
        // Ground truth by rescanning the relation.
        let rel = db.catalog().relation("emp").unwrap();
        for &pid in &ids {
            let stored = index.get(pid).unwrap();
            let want: Vec<TupleId> = stored.bound.scan(rel).map(|(tid, _)| tid).collect();
            let got: Vec<TupleId> = mem.matches_of(pid).collect();
            assert_eq!(got, want, "predicate {pid}");
        }
        assert_eq!(mem.total_pairs(), 200);
    }

    #[test]
    fn clear_predicate_forgets() {
        let (mut db, index, ids) = setup();
        let mut mem = MatchMemory::new();
        let ev = db
            .insert_event("emp", vec![Value::str("x"), Value::Int(10)])
            .unwrap();
        mem.apply(&index, &ev);
        assert_eq!(mem.count(ids[0]), 1);
        mem.clear_predicate(ids[0]);
        assert_eq!(mem.count(ids[0]), 0);
        assert_eq!(mem.matches_of(ids[0]).count(), 0);
    }
}
