//! The paper's predicate indexing scheme (Figure 1).
//!
//! ```text
//! inserted or deleted tuples enter here
//!                │
//!        hash on relation name
//!                │
//!   ┌────────────┴───────────────────────────────┐
//!   │ per-relation second-level index:           │
//!   │   list of non-indexable predicates         │
//!   │   one IBS-tree per attribute with ≥1       │
//!   │     indexable predicate clause             │
//!   └────────────┬───────────────────────────────┘
//!                │ partial matches
//!        PREDICATES table: full residual test
//! ```
//!
//! For a conjunction with several indexable clauses, "the most selective
//! one is placed in the IBS-tree (selectivity estimates are obtained
//! from the query optimizer)"; everything else is verified by the
//! residual test against the `PREDICATES` table.
//!
//! The building blocks here — [`RelationIndex`], [`Placement`], the
//! residual filter — are shared with the concurrent front-end in
//! [`crate::sharded`], which partitions the same structure by relation
//! so the two matchers stay semantically identical by construction.

use crate::matcher::{IndexError, Matcher, PredicateId, PredicateStore, StoredPredicate};
use crate::metrics::IndexMetrics;
use ibs::{BalanceMode, IbsTree, StabStats};
use interval::Interval;
use predicate::selectivity::most_selective_indexable;
use predicate::{BoundClause, Predicate};
use relation::fx::FnvHashMap;
use relation::{Catalog, Tuple, Value};
use std::sync::Arc;
use telemetry::{
    AttrRecorder, ClauseShape, MatchTrace, Registry, RelationRecorder, ResidualTrace, StabTrace,
    Tracer, WorkloadStats,
};

/// Where a registered predicate physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Location {
    /// In the IBS-tree of this attribute (by schema position).
    Tree { attr: usize },
    /// On the relation's non-indexable list.
    NonIndexable,
    /// Nowhere: the predicate is unsatisfiable and can never match.
    Unsatisfiable,
}

/// The placement decision for a freshly bound predicate: [`Location`]
/// plus the interval that goes into the tree, when there is one.
pub(crate) enum Placement {
    Tree {
        attr: usize,
        interval: Interval<Value>,
    },
    NonIndexable,
    Unsatisfiable,
}

/// Classifies an indexed interval into the workload-account clause
/// taxonomy: a point is `=`, a half-open interval is `<` or `>` by
/// which side is unbounded, everything else (both sides bounded, or a
/// universal clause) counts as an interval.
pub(crate) fn clause_shape_of(interval: &Interval<Value>) -> ClauseShape {
    if interval.is_point() {
        return ClauseShape::Eq;
    }
    match (interval.lo().value(), interval.hi().value()) {
        (None, Some(_)) => ClauseShape::Less,
        (Some(_), None) => ClauseShape::Greater,
        _ => ClauseShape::Interval,
    }
}

/// The finite length of an indexed interval for the workload length
/// histogram: 0 for a point, `|hi - lo|` for bounded numeric bounds,
/// `None` when a side is unbounded or the endpoints are not numeric.
pub(crate) fn interval_length_of(interval: &Interval<Value>) -> Option<u64> {
    if interval.is_point() {
        return Some(0);
    }
    match (interval.lo().value(), interval.hi().value()) {
        (Some(Value::Int(a)), Some(Value::Int(b))) => Some(b.wrapping_sub(*a).unsigned_abs()),
        (Some(Value::Float(a)), Some(Value::Float(b))) => Some((b - a).abs() as u64),
        _ => None,
    }
}

/// Decides where a bound predicate belongs: the most selective
/// indexable clause's tree, the non-indexable list, or nowhere.
pub(crate) fn place(catalog: &Catalog, stored: &StoredPredicate) -> Placement {
    if !stored.bound.is_satisfiable() {
        return Placement::Unsatisfiable;
    }
    match most_selective_indexable(catalog, &stored.bound) {
        Some(cix) => {
            let BoundClause::Range { attr, interval } = &stored.bound.clauses()[cix] else {
                // srclint:allow(no-panic-in-lib): most_selective_indexable only ever selects Range clauses
                unreachable!("most_selective_indexable returns range clauses")
            };
            Placement::Tree {
                attr: *attr,
                interval: interval.clone(),
            }
        }
        None => Placement::NonIndexable,
    }
}

/// The residual test (Figure 1's last stage): keeps only ids whose full
/// conjunction holds, then sorts the tail for deterministic output.
pub(crate) fn residual_filter(
    store: &PredicateStore,
    tuple: &Tuple,
    out: &mut Vec<PredicateId>,
    from: usize,
) {
    let mut keep = from;
    for i in from..out.len() {
        if store.full_match(out[i], tuple) {
            out.swap(keep, i);
            keep += 1;
        }
    }
    out.truncate(keep);
    out[from..].sort_unstable();
}

/// The full match path with metrics: hash on relation name, partial
/// match (metered when enabled), residual filter, one `record_match`.
/// Shared by [`PredicateIndex`] and each shard of the sharded index so
/// both record identically.
pub(crate) fn match_into_metered(
    relations: &FnvHashMap<String, RelationIndex>,
    store: &PredicateStore,
    metrics: &IndexMetrics,
    workload: &WorkloadStats,
    relation: &str,
    tuple: &Tuple,
    out: &mut Vec<PredicateId>,
) {
    let from = out.len();
    let tracer = metrics.tracer();
    if let Some(ri) = relations.get(relation) {
        {
            let _stab = tracer.span("predindex_stab");
            if metrics.is_enabled() || workload.is_enabled() {
                ri.collect_partial_metered(relation, tuple, out, metrics);
            } else {
                ri.collect_partial(tuple, out);
            }
        }
        let partials = (out.len() - from) as u64;
        {
            let _residual = tracer.span_with("predindex_residual", || {
                vec![("partials", partials.to_string())]
            });
            residual_filter(store, tuple, out, from);
        }
        metrics.record_match(relation, partials, (out.len() - from) as u64);
    } else {
        metrics.record_match(relation, 0, 0);
    }
}

/// Builds the Figure 1 EXPLAIN trace for one tuple: the same walk as
/// [`match_into_metered`], but recording per-stage work and the outcome
/// of every residual test instead of counters. Shared by both indexes.
pub(crate) fn explain_match(
    relations: &FnvHashMap<String, RelationIndex>,
    store: &PredicateStore,
    relation: &str,
    tuple: &Tuple,
) -> MatchTrace {
    let mut trace = MatchTrace {
        relation: relation.to_string(),
        tuple: tuple.to_string(),
        ..MatchTrace::default()
    };
    let mut candidates = Vec::new();
    if let Some(ri) = relations.get(relation) {
        trace.relation_indexed = true;
        ri.explain_partial(tuple, &mut candidates, &mut trace);
    }
    for &id in &candidates {
        trace.residual.push(ResidualTrace {
            predicate: id.0,
            pass: store.full_match(id, tuple),
            source: store
                .get(id)
                .and_then(|p| p.source.to_source())
                .unwrap_or_else(|| "<opaque>".to_string()),
        });
    }
    trace
}

/// One attribute's IBS-tree plus its pre-resolved workload account —
/// the recorder is minted when the tree (or the workload attachment)
/// is created, so the stab path records with atomic adds only.
#[derive(Debug, Clone)]
pub(crate) struct AttrTree {
    tree: IbsTree<Value>,
    workload: AttrRecorder,
}

/// Second-level index for one relation.
#[derive(Debug, Clone, Default)]
pub(crate) struct RelationIndex {
    /// One IBS-tree per attribute that has at least one indexed clause.
    attr_trees: FnvHashMap<usize, AttrTree>,
    /// Predicates whose clauses are all opaque functions (or empty).
    non_indexable: Vec<PredicateId>,
    /// Cached per-relation workload account (tuples matched).
    tuple_recorder: RelationRecorder,
}

impl RelationIndex {
    /// (Re-)mints every cached workload recorder from `workload` —
    /// called when workload accounts are attached to an index that
    /// already holds trees. The existing population is backfilled as
    /// inserts so derived live counts are correct for predicates
    /// registered before attachment; attach a fresh `WorkloadStats`
    /// per index generation, or the backfill double-counts.
    pub(crate) fn attach_workload(&mut self, relation: &str, workload: &WorkloadStats) {
        self.tuple_recorder = workload.relation_recorder(relation);
        for _ in &self.non_indexable {
            self.tuple_recorder.record_non_indexable_insert();
        }
        for (&attr, at) in self.attr_trees.iter_mut() {
            at.workload = workload.attr_recorder(relation, attr);
            for (_, interval) in at.tree.iter() {
                at.workload
                    .record_insert(clause_shape_of(interval), interval_length_of(interval));
            }
        }
    }

    /// Mints the per-relation recorder on first use (insert paths call
    /// this so relations created after attachment get accounts too).
    pub(crate) fn ensure_tuple_recorder(&mut self, relation: &str, workload: &WorkloadStats) {
        if workload.is_enabled() && !self.tuple_recorder.is_enabled() {
            self.tuple_recorder = workload.relation_recorder(relation);
        }
    }

    /// Indexes `interval` under `attr`, creating the tree on first use.
    pub(crate) fn insert_tree(
        &mut self,
        relation: &str,
        attr: usize,
        id: PredicateId,
        interval: Interval<Value>,
        mode: BalanceMode,
        workload: &WorkloadStats,
    ) {
        let at = self.attr_trees.entry(attr).or_insert_with(|| AttrTree {
            tree: IbsTree::with_mode(mode),
            workload: workload.attr_recorder(relation, attr),
        });
        if workload.is_enabled() && !at.workload.is_enabled() {
            at.workload = workload.attr_recorder(relation, attr);
        }
        at.tree
            .insert(id, interval)
            // srclint:allow(no-panic-in-lib): the store just minted this id; the tree cannot already hold it
            .expect("fresh predicate id");
    }

    /// Appends to the non-indexable list.
    pub(crate) fn push_non_indexable(&mut self, id: PredicateId) {
        self.non_indexable.push(id);
    }

    /// Removes an indexed interval, dropping the tree when it empties.
    /// Returns the removed interval so callers can account for its
    /// clause shape without a second lookup.
    pub(crate) fn remove_tree(&mut self, attr: usize, id: PredicateId) -> Interval<Value> {
        // srclint:allow(no-panic-in-lib): the location map recorded a Tree placement for this attr
        let at = self.attr_trees.get_mut(&attr).expect("indexed tree exists");
        // srclint:allow(no-panic-in-lib): the tree held this id since the placement was recorded
        let interval = at.tree.remove(id).expect("indexed interval exists");
        if at.tree.is_empty() {
            self.attr_trees.remove(&attr);
        }
        interval
    }

    /// Removes from the non-indexable list.
    pub(crate) fn remove_non_indexable(&mut self, id: PredicateId) {
        self.non_indexable.retain(|&p| p != id);
    }

    /// Partial match: stabs every per-attribute IBS-tree with the
    /// tuple's value for that attribute, then sweeps the non-indexable
    /// list. Each predicate lives in exactly one place, so no
    /// deduplication is needed. Attributes beyond the tuple's arity are
    /// skipped — a clause on a missing attribute cannot hold, and the
    /// residual test agrees (see `BoundClause::test`).
    pub(crate) fn collect_partial(&self, tuple: &Tuple, out: &mut Vec<PredicateId>) {
        for (&attr, at) in &self.attr_trees {
            if let Some(value) = tuple.values().get(attr) {
                at.tree.stab_into(value, out);
            }
        }
        out.extend_from_slice(&self.non_indexable);
    }

    /// [`collect_partial`](Self::collect_partial) with per-stab work
    /// counting and per-attribute workload accounting. Only runs when
    /// metrics or workload accounts are enabled; the disabled path
    /// keeps calling the uninstrumented loop. Workload recording goes
    /// through the cached per-tree recorders, so each stab pays atomic
    /// adds only — no name lookups on the match path. (Tuples are
    /// counted here, i.e. only for relations with at least one
    /// registered predicate — unindexed relations do no stab work and
    /// carry no account.)
    pub(crate) fn collect_partial_metered(
        &self,
        relation: &str,
        tuple: &Tuple,
        out: &mut Vec<PredicateId>,
        metrics: &IndexMetrics,
    ) {
        self.tuple_recorder.record_tuple();
        for (&attr, at) in &self.attr_trees {
            if let Some(value) = tuple.values().get(attr) {
                let before = out.len();
                let mut stats = StabStats::default();
                at.tree.stab_into_observed(value, out, &mut stats);
                metrics.record_attr_stab(relation, attr, stats.nodes_visited, stats.marks_scanned);
                at.workload.record_stab((out.len() - before) as u64);
            }
        }
        out.extend_from_slice(&self.non_indexable);
        metrics.record_non_indexable(self.non_indexable.len() as u64);
    }

    /// The EXPLAIN version of the partial match: same candidates, plus
    /// one [`StabTrace`] per attribute tree (ordered by attribute) and
    /// the non-indexable sweep size, written into `trace`.
    pub(crate) fn explain_partial(
        &self,
        tuple: &Tuple,
        out: &mut Vec<PredicateId>,
        trace: &mut MatchTrace,
    ) {
        for (&attr, at) in &self.attr_trees {
            if let Some(value) = tuple.values().get(attr) {
                let mut stats = StabStats::default();
                at.tree.stab_into_observed(value, out, &mut stats);
                trace.stabs.push(StabTrace {
                    attr,
                    attr_name: format!("#{attr}"),
                    value: value.to_string(),
                    nodes_visited: stats.nodes_visited,
                    marks_scanned: stats.marks_scanned,
                    less_hits: stats.less_hits,
                    eq_hits: stats.eq_hits,
                    greater_hits: stats.greater_hits,
                    universal_hits: stats.universal_hits,
                    tree_intervals: at.tree.len(),
                    tree_height: at.tree.height(),
                });
            }
        }
        trace.stabs.sort_by_key(|s| s.attr);
        out.extend_from_slice(&self.non_indexable);
        trace.non_indexable_scanned = self.non_indexable.len();
    }

    /// Iterates `(attribute index, tree)` pairs (stats support).
    pub(crate) fn attr_trees_iter(&self) -> impl Iterator<Item = (usize, &IbsTree<Value>)> {
        self.attr_trees.iter().map(|(&a, t)| (a, &t.tree))
    }

    /// Number of attribute trees (stats support).
    pub(crate) fn tree_count(&self) -> usize {
        self.attr_trees.len()
    }

    /// Total markers across this relation's trees (§5.1 space metric).
    pub(crate) fn marker_count(&self) -> usize {
        self.attr_trees
            .values()
            .map(|t| t.tree.marker_count())
            .sum()
    }

    /// Length of the non-indexable list (stats support).
    pub(crate) fn non_indexable_len(&self) -> usize {
        self.non_indexable.len()
    }
}

/// The paper's predicate index: relation-name hash → per-attribute
/// IBS-trees + non-indexable list → `PREDICATES` residual test.
///
/// ```
/// use predindex::{Matcher, PredicateIndex};
/// use predicate::parse_predicate;
/// use relation::{AttrType, Database, Schema, Value};
///
/// let mut db = Database::new();
/// db.create_relation(
///     Schema::builder("emp")
///         .attr("age", AttrType::Int)
///         .attr("salary", AttrType::Int)
///         .build(),
/// )
/// .unwrap();
///
/// let mut index = PredicateIndex::new();
/// let p = parse_predicate("emp.salary < 20000 and emp.age > 50").unwrap();
/// let id = index.insert(p, db.catalog()).unwrap();
///
/// let t = db.insert("emp", vec![Value::Int(61), Value::Int(12_000)]).unwrap();
/// assert_eq!(index.match_tuple("emp", &t), vec![id]);
/// ```
#[derive(Debug, Clone)]
pub struct PredicateIndex {
    relations: FnvHashMap<String, RelationIndex>,
    store: PredicateStore,
    locations: FnvHashMap<u32, (String, Location)>,
    mode: BalanceMode,
    /// Disabled by default; swapped by [`attach_registry`]
    /// (clones share the bundle — counters are process totals).
    ///
    /// [`attach_registry`]: PredicateIndex::attach_registry
    metrics: Arc<IndexMetrics>,
    /// Per-relation+attribute workload accounts; disabled by default,
    /// swapped by [`attach_workload`](PredicateIndex::attach_workload).
    workload: WorkloadStats,
}

impl Default for PredicateIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl PredicateIndex {
    /// An index whose IBS-trees are AVL-balanced.
    pub fn new() -> Self {
        Self::with_mode(BalanceMode::Avl)
    }

    /// An index with explicit IBS-tree balancing (the paper's empirical
    /// section ran unbalanced trees).
    pub fn with_mode(mode: BalanceMode) -> Self {
        PredicateIndex {
            relations: FnvHashMap::default(),
            store: PredicateStore::new(),
            locations: FnvHashMap::default(),
            mode,
            metrics: IndexMetrics::disabled(),
            workload: WorkloadStats::disabled(),
        }
    }

    /// Starts recording match-path metrics into `registry` (see
    /// [`IndexMetrics`] for the catalogue). Until this is called the
    /// index runs with the no-op bundle: one branch per would-be
    /// recording site.
    pub fn attach_registry(&mut self, registry: &Arc<Registry>) {
        self.metrics = IndexMetrics::from_registry(registry, 0);
    }

    /// [`attach_registry`](Self::attach_registry) plus a span tracer:
    /// the match path additionally emits `predindex_stab` and
    /// `predindex_residual` spans into `tracer`'s ring.
    pub fn attach_telemetry(&mut self, registry: &Arc<Registry>, tracer: Tracer) {
        self.metrics = IndexMetrics::from_parts(registry, 0, tracer);
    }

    /// Starts recording per-relation+attribute workload accounts (op
    /// mix, clause shapes, stab selectivity) into `workload` — the
    /// observation feed for [`crate::advisor`]. Until this is called
    /// the index runs with the no-op handle: one branch per site.
    pub fn attach_workload(&mut self, workload: WorkloadStats) {
        for (relation, ri) in self.relations.iter_mut() {
            ri.attach_workload(relation, &workload);
        }
        self.workload = workload;
    }

    /// The attached workload-account handle (disabled by default).
    pub fn workload(&self) -> &WorkloadStats {
        &self.workload
    }

    /// The Figure 1 EXPLAIN: the exact path `tuple` takes through the
    /// index, with per-stage work counts and every residual-test
    /// outcome. Independent of metrics — always available, never
    /// touches the registry.
    pub fn explain_tuple(&self, relation: &str, tuple: &Tuple) -> MatchTrace {
        explain_match(&self.relations, &self.store, relation, tuple)
    }

    /// The stored form of a registered predicate.
    pub fn get(&self, id: PredicateId) -> Option<&StoredPredicate> {
        self.store.get(id)
    }

    /// Matching ids appended into a caller-owned buffer (hot path).
    pub fn match_tuple_into(&self, relation: &str, tuple: &Tuple, out: &mut Vec<PredicateId>) {
        match_into_metered(
            &self.relations,
            &self.store,
            &self.metrics,
            &self.workload,
            relation,
            tuple,
            out,
        );
    }

    /// Number of per-attribute IBS-trees across all relations (for
    /// diagnostics and the §5.2 cost model).
    pub fn attribute_tree_count(&self) -> usize {
        self.relations.values().map(|r| r.tree_count()).sum()
    }

    /// Iterates `(relation name, relation index)` pairs (stats support).
    pub(crate) fn relations_iter(&self) -> impl Iterator<Item = (&str, &RelationIndex)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total markers across all IBS-trees (§5.1 space metric).
    pub fn marker_count(&self) -> usize {
        self.relations.values().map(|r| r.marker_count()).sum()
    }
}

impl Matcher for PredicateIndex {
    fn insert(&mut self, pred: Predicate, catalog: &Catalog) -> Result<PredicateId, IndexError> {
        let (id, stored) = self.store.register(pred, catalog)?;
        let relation = stored.bound.relation().to_string();
        // Decide the placement with the store borrow, mutate after.
        let placement = place(catalog, stored);
        let mode = self.mode;
        let location = match placement {
            Placement::Unsatisfiable => Location::Unsatisfiable,
            Placement::Tree { attr, interval } => {
                let workload = &self.workload;
                if workload.is_enabled() {
                    workload.record_insert(
                        &relation,
                        attr,
                        clause_shape_of(&interval),
                        interval_length_of(&interval),
                    );
                }
                let ri = self.relations.entry(relation.clone()).or_default();
                ri.ensure_tuple_recorder(&relation, workload);
                ri.insert_tree(&relation, attr, id, interval, mode, workload);
                Location::Tree { attr }
            }
            Placement::NonIndexable => {
                let workload = &self.workload;
                workload.record_non_indexable_insert(&relation);
                let ri = self.relations.entry(relation.clone()).or_default();
                ri.ensure_tuple_recorder(&relation, workload);
                ri.push_non_indexable(id);
                Location::NonIndexable
            }
        };
        self.locations.insert(id.0, (relation, location));
        Ok(id)
    }

    fn remove(&mut self, id: PredicateId) -> Option<Predicate> {
        let stored = self.store.unregister(id)?;
        let (relation, location) = self
            .locations
            .remove(&id.0)
            // srclint:allow(no-panic-in-lib): store and locations are updated together
            .expect("stored predicate must have a location");
        match location {
            Location::Tree { attr } => {
                let interval = self
                    .relations
                    .get_mut(&relation)
                    // srclint:allow(no-panic-in-lib): a Tree location implies the relation entry exists
                    .expect("indexed relation exists")
                    .remove_tree(attr, id);
                if self.workload.is_enabled() {
                    self.workload
                        .record_delete(&relation, attr, clause_shape_of(&interval));
                }
            }
            Location::NonIndexable => {
                self.relations
                    .get_mut(&relation)
                    // srclint:allow(no-panic-in-lib): a NonIndexable location implies the relation entry exists
                    .expect("indexed relation exists")
                    .remove_non_indexable(id);
                self.workload.record_non_indexable_delete(&relation);
            }
            Location::Unsatisfiable => {}
        }
        Some(stored.source)
    }

    fn match_tuple(&self, relation: &str, tuple: &Tuple) -> Vec<PredicateId> {
        let mut out = Vec::new();
        self.match_tuple_into(relation, tuple, &mut out);
        out
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn strategy(&self) -> &'static str {
        "ibs-index"
    }
}
