//! The paper's predicate indexing scheme (Figure 1).
//!
//! ```text
//! inserted or deleted tuples enter here
//!                │
//!        hash on relation name
//!                │
//!   ┌────────────┴───────────────────────────────┐
//!   │ per-relation second-level index:           │
//!   │   list of non-indexable predicates         │
//!   │   one IBS-tree per attribute with ≥1       │
//!   │     indexable predicate clause             │
//!   └────────────┬───────────────────────────────┘
//!                │ partial matches
//!        PREDICATES table: full residual test
//! ```
//!
//! For a conjunction with several indexable clauses, "the most selective
//! one is placed in the IBS-tree (selectivity estimates are obtained
//! from the query optimizer)"; everything else is verified by the
//! residual test against the `PREDICATES` table.
//!
//! The building blocks here — [`RelationIndex`], [`Placement`], the
//! residual filter — are shared with the concurrent front-end in
//! [`crate::sharded`], which partitions the same structure by relation
//! so the two matchers stay semantically identical by construction.

use crate::matcher::{IndexError, Matcher, PredicateId, PredicateStore, StoredPredicate};
use ibs::{BalanceMode, IbsTree};
use interval::Interval;
use predicate::selectivity::most_selective_indexable;
use predicate::{BoundClause, Predicate};
use relation::fx::FnvHashMap;
use relation::{Catalog, Tuple, Value};

/// Where a registered predicate physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Location {
    /// In the IBS-tree of this attribute (by schema position).
    Tree { attr: usize },
    /// On the relation's non-indexable list.
    NonIndexable,
    /// Nowhere: the predicate is unsatisfiable and can never match.
    Unsatisfiable,
}

/// The placement decision for a freshly bound predicate: [`Location`]
/// plus the interval that goes into the tree, when there is one.
pub(crate) enum Placement {
    Tree {
        attr: usize,
        interval: Interval<Value>,
    },
    NonIndexable,
    Unsatisfiable,
}

/// Decides where a bound predicate belongs: the most selective
/// indexable clause's tree, the non-indexable list, or nowhere.
pub(crate) fn place(catalog: &Catalog, stored: &StoredPredicate) -> Placement {
    if !stored.bound.is_satisfiable() {
        return Placement::Unsatisfiable;
    }
    match most_selective_indexable(catalog, &stored.bound) {
        Some(cix) => {
            let BoundClause::Range { attr, interval } = &stored.bound.clauses()[cix] else {
                unreachable!("most_selective_indexable returns range clauses")
            };
            Placement::Tree {
                attr: *attr,
                interval: interval.clone(),
            }
        }
        None => Placement::NonIndexable,
    }
}

/// The residual test (Figure 1's last stage): keeps only ids whose full
/// conjunction holds, then sorts the tail for deterministic output.
pub(crate) fn residual_filter(
    store: &PredicateStore,
    tuple: &Tuple,
    out: &mut Vec<PredicateId>,
    from: usize,
) {
    let mut keep = from;
    for i in from..out.len() {
        if store.full_match(out[i], tuple) {
            out.swap(keep, i);
            keep += 1;
        }
    }
    out.truncate(keep);
    out[from..].sort_unstable();
}

/// Second-level index for one relation.
#[derive(Debug, Clone, Default)]
pub(crate) struct RelationIndex {
    /// One IBS-tree per attribute that has at least one indexed clause.
    attr_trees: FnvHashMap<usize, IbsTree<Value>>,
    /// Predicates whose clauses are all opaque functions (or empty).
    non_indexable: Vec<PredicateId>,
}

impl RelationIndex {
    /// Indexes `interval` under `attr`, creating the tree on first use.
    pub(crate) fn insert_tree(
        &mut self,
        attr: usize,
        id: PredicateId,
        interval: Interval<Value>,
        mode: BalanceMode,
    ) {
        self.attr_trees
            .entry(attr)
            .or_insert_with(|| IbsTree::with_mode(mode))
            .insert(id, interval)
            .expect("fresh predicate id");
    }

    /// Appends to the non-indexable list.
    pub(crate) fn push_non_indexable(&mut self, id: PredicateId) {
        self.non_indexable.push(id);
    }

    /// Removes an indexed interval, dropping the tree when it empties.
    pub(crate) fn remove_tree(&mut self, attr: usize, id: PredicateId) {
        let tree = self.attr_trees.get_mut(&attr).expect("indexed tree exists");
        tree.remove(id).expect("indexed interval exists");
        if tree.is_empty() {
            self.attr_trees.remove(&attr);
        }
    }

    /// Removes from the non-indexable list.
    pub(crate) fn remove_non_indexable(&mut self, id: PredicateId) {
        self.non_indexable.retain(|&p| p != id);
    }

    /// Partial match: stabs every per-attribute IBS-tree with the
    /// tuple's value for that attribute, then sweeps the non-indexable
    /// list. Each predicate lives in exactly one place, so no
    /// deduplication is needed. Attributes beyond the tuple's arity are
    /// skipped — a clause on a missing attribute cannot hold, and the
    /// residual test agrees (see `BoundClause::test`).
    pub(crate) fn collect_partial(&self, tuple: &Tuple, out: &mut Vec<PredicateId>) {
        for (&attr, tree) in &self.attr_trees {
            if let Some(value) = tuple.values().get(attr) {
                tree.stab_into(value, out);
            }
        }
        out.extend_from_slice(&self.non_indexable);
    }

    /// Iterates `(attribute index, tree)` pairs (stats support).
    pub(crate) fn attr_trees_iter(&self) -> impl Iterator<Item = (usize, &IbsTree<Value>)> {
        self.attr_trees.iter().map(|(&a, t)| (a, t))
    }

    /// Number of attribute trees (stats support).
    pub(crate) fn tree_count(&self) -> usize {
        self.attr_trees.len()
    }

    /// Total markers across this relation's trees (§5.1 space metric).
    pub(crate) fn marker_count(&self) -> usize {
        self.attr_trees.values().map(|t| t.marker_count()).sum()
    }

    /// Length of the non-indexable list (stats support).
    pub(crate) fn non_indexable_len(&self) -> usize {
        self.non_indexable.len()
    }
}

/// The paper's predicate index: relation-name hash → per-attribute
/// IBS-trees + non-indexable list → `PREDICATES` residual test.
///
/// ```
/// use predindex::{Matcher, PredicateIndex};
/// use predicate::parse_predicate;
/// use relation::{AttrType, Database, Schema, Value};
///
/// let mut db = Database::new();
/// db.create_relation(
///     Schema::builder("emp")
///         .attr("age", AttrType::Int)
///         .attr("salary", AttrType::Int)
///         .build(),
/// )
/// .unwrap();
///
/// let mut index = PredicateIndex::new();
/// let p = parse_predicate("emp.salary < 20000 and emp.age > 50").unwrap();
/// let id = index.insert(p, db.catalog()).unwrap();
///
/// let t = db.insert("emp", vec![Value::Int(61), Value::Int(12_000)]).unwrap();
/// assert_eq!(index.match_tuple("emp", &t), vec![id]);
/// ```
#[derive(Debug, Clone)]
pub struct PredicateIndex {
    relations: FnvHashMap<String, RelationIndex>,
    store: PredicateStore,
    locations: FnvHashMap<u32, (String, Location)>,
    mode: BalanceMode,
}

impl Default for PredicateIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl PredicateIndex {
    /// An index whose IBS-trees are AVL-balanced.
    pub fn new() -> Self {
        Self::with_mode(BalanceMode::Avl)
    }

    /// An index with explicit IBS-tree balancing (the paper's empirical
    /// section ran unbalanced trees).
    pub fn with_mode(mode: BalanceMode) -> Self {
        PredicateIndex {
            relations: FnvHashMap::default(),
            store: PredicateStore::new(),
            locations: FnvHashMap::default(),
            mode,
        }
    }

    /// The stored form of a registered predicate.
    pub fn get(&self, id: PredicateId) -> Option<&StoredPredicate> {
        self.store.get(id)
    }

    /// Matching ids appended into a caller-owned buffer (hot path).
    pub fn match_tuple_into(&self, relation: &str, tuple: &Tuple, out: &mut Vec<PredicateId>) {
        let from = out.len();
        let Some(ri) = self.relations.get(relation) else {
            return;
        };
        ri.collect_partial(tuple, out);
        residual_filter(&self.store, tuple, out, from);
    }

    /// Number of per-attribute IBS-trees across all relations (for
    /// diagnostics and the §5.2 cost model).
    pub fn attribute_tree_count(&self) -> usize {
        self.relations.values().map(|r| r.tree_count()).sum()
    }

    /// Iterates `(relation name, relation index)` pairs (stats support).
    pub(crate) fn relations_iter(&self) -> impl Iterator<Item = (&str, &RelationIndex)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total markers across all IBS-trees (§5.1 space metric).
    pub fn marker_count(&self) -> usize {
        self.relations.values().map(|r| r.marker_count()).sum()
    }
}

impl Matcher for PredicateIndex {
    fn insert(&mut self, pred: Predicate, catalog: &Catalog) -> Result<PredicateId, IndexError> {
        let (id, stored) = self.store.register(pred, catalog)?;
        let relation = stored.bound.relation().to_string();
        // Decide the placement with the store borrow, mutate after.
        let placement = place(catalog, stored);
        let mode = self.mode;
        let location = match placement {
            Placement::Unsatisfiable => Location::Unsatisfiable,
            Placement::Tree { attr, interval } => {
                self.relations
                    .entry(relation.clone())
                    .or_default()
                    .insert_tree(attr, id, interval, mode);
                Location::Tree { attr }
            }
            Placement::NonIndexable => {
                self.relations
                    .entry(relation.clone())
                    .or_default()
                    .push_non_indexable(id);
                Location::NonIndexable
            }
        };
        self.locations.insert(id.0, (relation, location));
        Ok(id)
    }

    fn remove(&mut self, id: PredicateId) -> Option<Predicate> {
        let stored = self.store.unregister(id)?;
        let (relation, location) = self
            .locations
            .remove(&id.0)
            .expect("stored predicate must have a location");
        match location {
            Location::Tree { attr } => {
                self.relations
                    .get_mut(&relation)
                    .expect("indexed relation exists")
                    .remove_tree(attr, id);
            }
            Location::NonIndexable => {
                self.relations
                    .get_mut(&relation)
                    .expect("indexed relation exists")
                    .remove_non_indexable(id);
            }
            Location::Unsatisfiable => {}
        }
        Some(stored.source)
    }

    fn match_tuple(&self, relation: &str, tuple: &Tuple) -> Vec<PredicateId> {
        let mut out = Vec::new();
        self.match_tuple_into(relation, tuple, &mut out);
        out
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn strategy(&self) -> &'static str {
        "ibs-index"
    }
}
