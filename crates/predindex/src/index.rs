//! The paper's predicate indexing scheme (Figure 1).
//!
//! ```text
//! inserted or deleted tuples enter here
//!                │
//!        hash on relation name
//!                │
//!   ┌────────────┴───────────────────────────────┐
//!   │ per-relation second-level index:           │
//!   │   list of non-indexable predicates         │
//!   │   one IBS-tree per attribute with ≥1       │
//!   │     indexable predicate clause             │
//!   └────────────┬───────────────────────────────┘
//!                │ partial matches
//!        PREDICATES table: full residual test
//! ```
//!
//! For a conjunction with several indexable clauses, "the most selective
//! one is placed in the IBS-tree (selectivity estimates are obtained
//! from the query optimizer)"; everything else is verified by the
//! residual test against the `PREDICATES` table.

use crate::matcher::{IndexError, Matcher, PredicateId, PredicateStore, StoredPredicate};
use ibs::{BalanceMode, IbsTree};
use interval::Interval;
use predicate::selectivity::most_selective_indexable;
use predicate::{BoundClause, Predicate};
use relation::fx::FnvHashMap;
use relation::{Catalog, Tuple, Value};

/// Where a registered predicate physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Location {
    /// In the IBS-tree of this attribute (by schema position).
    Tree { attr: usize },
    /// On the relation's non-indexable list.
    NonIndexable,
    /// Nowhere: the predicate is unsatisfiable and can never match.
    Unsatisfiable,
}

/// Second-level index for one relation.
#[derive(Debug, Clone, Default)]
pub(crate) struct RelationIndex {
    /// One IBS-tree per attribute that has at least one indexed clause.
    attr_trees: FnvHashMap<usize, IbsTree<Value>>,
    /// Predicates whose clauses are all opaque functions (or empty).
    non_indexable: Vec<PredicateId>,
}

impl RelationIndex {
    /// Iterates `(attribute index, tree)` pairs (stats support).
    pub(crate) fn attr_trees_iter(
        &self,
    ) -> impl Iterator<Item = (usize, &IbsTree<Value>)> {
        self.attr_trees.iter().map(|(&a, t)| (a, t))
    }

    /// Length of the non-indexable list (stats support).
    pub(crate) fn non_indexable_len(&self) -> usize {
        self.non_indexable.len()
    }
}

/// The paper's predicate index: relation-name hash → per-attribute
/// IBS-trees + non-indexable list → `PREDICATES` residual test.
///
/// ```
/// use predindex::{Matcher, PredicateIndex};
/// use predicate::parse_predicate;
/// use relation::{AttrType, Database, Schema, Value};
///
/// let mut db = Database::new();
/// db.create_relation(
///     Schema::builder("emp")
///         .attr("age", AttrType::Int)
///         .attr("salary", AttrType::Int)
///         .build(),
/// )
/// .unwrap();
///
/// let mut index = PredicateIndex::new();
/// let p = parse_predicate("emp.salary < 20000 and emp.age > 50").unwrap();
/// let id = index.insert(p, db.catalog()).unwrap();
///
/// let t = db.insert("emp", vec![Value::Int(61), Value::Int(12_000)]).unwrap();
/// assert_eq!(index.match_tuple("emp", &t), vec![id]);
/// ```
#[derive(Debug, Clone)]
pub struct PredicateIndex {
    relations: FnvHashMap<String, RelationIndex>,
    store: PredicateStore,
    locations: FnvHashMap<u32, (String, Location)>,
    mode: BalanceMode,
}

impl Default for PredicateIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl PredicateIndex {
    /// An index whose IBS-trees are AVL-balanced.
    pub fn new() -> Self {
        Self::with_mode(BalanceMode::Avl)
    }

    /// An index with explicit IBS-tree balancing (the paper's empirical
    /// section ran unbalanced trees).
    pub fn with_mode(mode: BalanceMode) -> Self {
        PredicateIndex {
            relations: FnvHashMap::default(),
            store: PredicateStore::new(),
            locations: FnvHashMap::default(),
            mode,
        }
    }

    /// The stored form of a registered predicate.
    pub fn get(&self, id: PredicateId) -> Option<&StoredPredicate> {
        self.store.get(id)
    }

    /// Matching ids appended into a caller-owned buffer (hot path).
    pub fn match_tuple_into(&self, relation: &str, tuple: &Tuple, out: &mut Vec<PredicateId>) {
        let from = out.len();
        let Some(ri) = self.relations.get(relation) else {
            return;
        };
        // Partial match: stab every per-attribute IBS-tree with the
        // tuple's value for that attribute, then sweep the non-indexable
        // list. Each predicate lives in exactly one place, so no
        // deduplication is needed.
        for (&attr, tree) in &ri.attr_trees {
            tree.stab_into(tuple.get(attr), out);
        }
        out.extend_from_slice(&ri.non_indexable);
        // Residual test against PREDICATES.
        let store = &self.store;
        let mut keep = from;
        for i in from..out.len() {
            if store.full_match(out[i], tuple) {
                out.swap(keep, i);
                keep += 1;
            }
        }
        out.truncate(keep);
        out[from..].sort_unstable();
    }

    /// Number of per-attribute IBS-trees across all relations (for
    /// diagnostics and the §5.2 cost model).
    pub fn attribute_tree_count(&self) -> usize {
        self.relations.values().map(|r| r.attr_trees.len()).sum()
    }

    /// Iterates `(relation name, relation index)` pairs (stats support).
    pub(crate) fn relations_iter(
        &self,
    ) -> impl Iterator<Item = (&str, &RelationIndex)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total markers across all IBS-trees (§5.1 space metric).
    pub fn marker_count(&self) -> usize {
        self.relations
            .values()
            .flat_map(|r| r.attr_trees.values())
            .map(|t| t.marker_count())
            .sum()
    }
}

impl Matcher for PredicateIndex {
    fn insert(&mut self, pred: Predicate, catalog: &Catalog) -> Result<PredicateId, IndexError> {
        let (id, stored) = self.store.register(pred, catalog)?;
        let relation = stored.bound.relation().to_string();
        // Decide the placement with the store borrow, mutate after.
        let chosen: Option<Option<(usize, Interval<Value>)>> = if !stored.bound.is_satisfiable()
        {
            None
        } else {
            Some(
                most_selective_indexable(catalog, &stored.bound).map(|cix| {
                    let BoundClause::Range { attr, interval } = &stored.bound.clauses()[cix]
                    else {
                        unreachable!("most_selective_indexable returns range clauses")
                    };
                    (*attr, interval.clone())
                }),
            )
        };
        let location = match chosen {
            None => Location::Unsatisfiable,
            Some(Some((attr, interval))) => {
                self.index_clause(&relation, attr, id, interval);
                Location::Tree { attr }
            }
            Some(None) => {
                self.relations
                    .entry(relation.clone())
                    .or_default()
                    .non_indexable
                    .push(id);
                Location::NonIndexable
            }
        };
        self.locations.insert(id.0, (relation, location));
        Ok(id)
    }

    fn remove(&mut self, id: PredicateId) -> Option<Predicate> {
        let stored = self.store.unregister(id)?;
        let (relation, location) = self
            .locations
            .remove(&id.0)
            .expect("stored predicate must have a location");
        match location {
            Location::Tree { attr } => {
                let ri = self
                    .relations
                    .get_mut(&relation)
                    .expect("indexed relation exists");
                let tree = ri.attr_trees.get_mut(&attr).expect("indexed tree exists");
                tree.remove(id).expect("indexed interval exists");
                if tree.is_empty() {
                    ri.attr_trees.remove(&attr);
                }
            }
            Location::NonIndexable => {
                let ri = self
                    .relations
                    .get_mut(&relation)
                    .expect("indexed relation exists");
                ri.non_indexable.retain(|&p| p != id);
            }
            Location::Unsatisfiable => {}
        }
        Some(stored.source)
    }

    fn match_tuple(&self, relation: &str, tuple: &Tuple) -> Vec<PredicateId> {
        let mut out = Vec::new();
        self.match_tuple_into(relation, tuple, &mut out);
        out
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn strategy(&self) -> &'static str {
        "ibs-index"
    }
}

impl PredicateIndex {
    fn index_clause(
        &mut self,
        relation: &str,
        attr: usize,
        id: PredicateId,
        interval: Interval<Value>,
    ) {
        let mode = self.mode;
        let tree = self
            .relations
            .entry(relation.to_string())
            .or_default()
            .attr_trees
            .entry(attr)
            .or_insert_with(|| IbsTree::with_mode(mode));
        tree.insert(id, interval).expect("fresh predicate id");
    }
}
