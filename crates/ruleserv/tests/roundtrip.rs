//! End-to-end wire-protocol tests: an in-process server with real TCP
//! clients, one of each opcode, pipelining, backpressure, and
//! subscription streams.

use durable::{ActionRegistry, ActionSpec, DurableRuleEngine, Options, RuleSpec, SyncPolicy};
use predicate::FunctionRegistry;
use relation::{AttrType, Schema, TupleId, Value};
use rules::EventMask;
use ruleserv::{serve, Client, ClientError, Reply, Request, ServerHandle, ServerOptions};
use std::sync::Arc;
use std::time::Duration;
use telemetry::Registry;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ruleserv-test-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn start(tag: &str, opts: ServerOptions) -> (ServerHandle, Arc<Registry>) {
    start_with_actions(tag, opts, ActionRegistry::new())
}

fn start_with_actions(
    tag: &str,
    opts: ServerOptions,
    actions: ActionRegistry,
) -> (ServerHandle, Arc<Registry>) {
    let registry = Arc::new(Registry::new());
    let engine = DurableRuleEngine::open_with_metrics(
        tempdir(tag),
        FunctionRegistry::default(),
        actions,
        Options {
            sync: SyncPolicy::EveryN(64),
            snapshot_every: None,
        },
        Arc::clone(&registry),
    )
    .unwrap();
    let server = serve("127.0.0.1:0", engine, opts).unwrap();
    (server, registry)
}

fn emp_schema() -> Schema {
    Schema::builder("emp")
        .attr("name", AttrType::Str)
        .attr("salary", AttrType::Int)
        .build()
}

#[test]
fn every_opcode_round_trips() {
    let (server, registry) = start("opcodes", ServerOptions::default());
    let mut client = Client::connect(server.addr()).unwrap();

    client.ping().unwrap();
    client.create_relation(emp_schema()).unwrap();
    let rule = client
        .add_rule(RuleSpec {
            name: "rich".into(),
            condition: "emp.salary > 1000".into(),
            mask: EventMask::INSERT_UPDATE,
            priority: 0,
            action: ActionSpec::Log("rich emp".into()),
        })
        .unwrap();

    let ack = client
        .insert("emp", vec![Value::Str("ann".into()), Value::Int(2000)])
        .unwrap();
    assert_eq!(ack.fired.len(), 1, "salary 2000 must fire the rule");
    assert!(ack.seq > 0);

    let quiet = client
        .insert("emp", vec![Value::Str("bob".into()), Value::Int(10)])
        .unwrap();
    assert!(quiet.fired.is_empty());
    assert!(quiet.seq > ack.seq, "WAL sequence must advance");

    let upd = client
        .update(
            "emp",
            TupleId(1),
            vec![Value::Str("bob".into()), Value::Int(5000)],
        )
        .unwrap();
    assert_eq!(upd.fired.len(), 1, "raise past 1000 must fire");

    client.delete("emp", TupleId(0)).unwrap();
    let batch = client
        .insert_batch(
            "emp",
            vec![
                vec![Value::Str("cho".into()), Value::Int(1500)],
                vec![Value::Str("dia".into()), Value::Int(999)],
            ],
        )
        .unwrap();
    assert_eq!(batch.fired.len(), 1, "one of the batch rows fires");

    let health = client.health().unwrap();
    assert!(health.contains("up 1"), "health text was: {health}");
    client.sync().unwrap();

    client.remove_rule(rule).unwrap();
    let silent = client
        .insert("emp", vec![Value::Str("eve".into()), Value::Int(9999)])
        .unwrap();
    assert!(silent.fired.is_empty(), "removed rule must not fire");

    client.drop_relation("emp").unwrap();
    let err = client
        .insert("emp", vec![Value::Str("fox".into()), Value::Int(1)])
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Server(_)),
        "insert into dropped relation must be a server error, got {err}"
    );

    // Per-op request counters were minted and bumped.
    assert!(registry.counter_family_total("server_requests_total") > 10);
    server.shutdown().unwrap();
}

#[test]
fn domain_errors_do_not_poison_the_connection() {
    let (server, _) = start("errors", ServerOptions::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let err = client.insert("ghost", vec![Value::Int(1)]).unwrap_err();
    assert!(matches!(err, ClientError::Server(_)));
    // The session must still be usable after a rejected op.
    client.ping().unwrap();
    client.create_relation(emp_schema()).unwrap();
    let err = client.insert("emp", vec![Value::Int(1)]).unwrap_err();
    assert!(
        matches!(err, ClientError::Server(_)),
        "arity mismatch rejects"
    );
    client
        .insert("emp", vec![Value::Str("ok".into()), Value::Int(1)])
        .unwrap();
    server.shutdown().unwrap();
}

#[test]
fn pipelined_replies_arrive_in_request_order() {
    let (server, _) = start("pipeline", ServerOptions::default());
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .create_relation(Schema::builder("t").attr("v", AttrType::Int).build())
        .unwrap();

    // 200 inserts in flight before reading anything; WAL sequence in
    // each Fire reply must be strictly increasing if replies come back
    // in request order.
    for i in 0..200 {
        client
            .send(&Request::Apply(durable::Record::Insert {
                relation: "t".into(),
                values: vec![Value::Int(i)],
            }))
            .unwrap();
    }
    let mut last_seq = 0;
    for i in 0..200 {
        match client.recv_reply().unwrap() {
            Reply::Fire(s) => {
                assert!(
                    s.seq > last_seq,
                    "reply {i} out of order: {} <= {last_seq}",
                    s.seq
                );
                last_seq = s.seq;
            }
            other => panic!("reply {i}: expected fire, got {}", other.kind()),
        }
    }
    assert_eq!(client.in_flight(), 0);
    server.shutdown().unwrap();
}

#[test]
fn a_saturated_engine_answers_busy_not_silence() {
    // A deliberately slow rule action stalls the engine thread; with a
    // queue bound of 1 the pipelined follow-ups must bounce with Busy
    // (in order!) rather than queue without bound or hang.
    let mut actions = ActionRegistry::new();
    actions.register("slow", |_ctx| {
        std::thread::sleep(Duration::from_millis(400))
    });
    let opts = ServerOptions {
        queue_cap: 1,
        ..ServerOptions::default()
    };
    let (server, registry) = start_with_actions("busy", opts, actions);
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .create_relation(Schema::builder("t").attr("v", AttrType::Int).build())
        .unwrap();
    client
        .add_rule(RuleSpec {
            name: "stall".into(),
            condition: "t.v >= 0".into(),
            mask: EventMask::INSERT_UPDATE,
            priority: 0,
            action: ActionSpec::Named("slow".into()),
        })
        .unwrap();

    for i in 0..32 {
        client
            .send(&Request::Apply(durable::Record::Insert {
                relation: "t".into(),
                values: vec![Value::Int(i)],
            }))
            .unwrap();
    }
    // Ping is answered by the session thread, never queued behind the
    // engine: it must come back (in order) even while the engine stalls.
    client.send(&Request::Ping).unwrap();

    let mut fires = 0;
    let mut busy = 0;
    for _ in 0..32 {
        match client.recv_reply().unwrap() {
            Reply::Fire(_) => fires += 1,
            Reply::Busy => busy += 1,
            other => panic!("expected fire or busy, got {}", other.kind()),
        }
    }
    assert!(matches!(client.recv_reply().unwrap(), Reply::Pong));
    assert!(fires >= 1, "at least the first insert is applied");
    assert!(busy >= 1, "a 1-deep queue under a 400ms stall must bounce");
    assert_eq!(fires + busy, 32);
    assert_eq!(
        registry.counter_value("server_busy_total"),
        Some(busy as u64)
    );
    server.shutdown().unwrap();
}

#[test]
fn subscriptions_stream_rule_firings_to_other_connections() {
    let (server, _) = start("subs", ServerOptions::default());
    let mut writer = Client::connect(server.addr()).unwrap();
    let mut watcher = Client::connect(server.addr()).unwrap();

    writer.create_relation(emp_schema()).unwrap();
    let rule = writer
        .add_rule(RuleSpec {
            name: "watchme".into(),
            condition: "emp.salary > 100".into(),
            mask: EventMask::INSERT_UPDATE,
            priority: 0,
            action: ActionSpec::Log("hit".into()),
        })
        .unwrap();
    watcher.subscribe().unwrap();

    writer
        .insert("emp", vec![Value::Str("ann".into()), Value::Int(500)])
        .unwrap();
    let event = watcher
        .wait_event(Duration::from_secs(5))
        .unwrap()
        .expect("the firing must be pushed to the subscriber");
    assert_eq!(event.rule_id, rule);
    assert_eq!(event.rule, "watchme");

    // Below threshold: no firing, no event.
    writer
        .insert("emp", vec![Value::Str("bob".into()), Value::Int(50)])
        .unwrap();
    assert!(watcher
        .wait_event(Duration::from_millis(300))
        .unwrap()
        .is_none());

    watcher.unsubscribe().unwrap();
    writer
        .insert("emp", vec![Value::Str("cho".into()), Value::Int(900)])
        .unwrap();
    assert!(
        watcher
            .wait_event(Duration::from_millis(300))
            .unwrap()
            .is_none(),
        "no events after unsubscribe"
    );
    assert_eq!(watcher.lagged(), 0);
    server.shutdown().unwrap();
}

#[test]
fn join_rules_fire_over_the_wire_with_bound_tuples() {
    let (server, _) = start("joins", ServerOptions::default());
    let mut writer = Client::connect(server.addr()).unwrap();
    let mut watcher = Client::connect(server.addr()).unwrap();

    writer
        .create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("dno", AttrType::Int)
                .build(),
        )
        .unwrap();
    writer
        .create_relation(
            Schema::builder("dept")
                .attr("dno", AttrType::Int)
                .attr("floor", AttrType::Int)
                .build(),
        )
        .unwrap();
    let rule = writer
        .add_rule(RuleSpec {
            name: "same-dept".into(),
            condition: "emp.dno = dept.dno and dept.floor = 1".into(),
            mask: EventMask::ALL,
            priority: 0,
            action: ActionSpec::Log("pair".into()),
        })
        .unwrap();
    watcher.subscribe().unwrap();

    // First premise alone: partial match, no firing, no event.
    writer
        .insert("dept", vec![Value::Int(4), Value::Int(1)])
        .unwrap();
    assert!(watcher
        .wait_event(Duration::from_millis(300))
        .unwrap()
        .is_none());

    // Completing the join fires, and the pushed event carries every
    // bound tuple in premise order with ids and values.
    let ack = writer
        .insert("emp", vec![Value::Str("al".into()), Value::Int(4)])
        .unwrap();
    assert_eq!(ack.fired.len(), 1);
    let event = watcher
        .wait_event(Duration::from_secs(5))
        .unwrap()
        .expect("join firing must be pushed");
    assert_eq!(event.rule_id, rule);
    assert_eq!(event.rule, "same-dept");
    assert_eq!(event.bindings.len(), 2, "bindings: {:?}", event.bindings);
    let dept = &event.bindings[0];
    assert_eq!(dept.relation, "dept");
    assert_eq!(dept.tuple_id, 0);
    assert_eq!(dept.values, vec![Value::Int(4), Value::Int(1)]);
    let emp = &event.bindings[1];
    assert_eq!(emp.relation, "emp");
    assert_eq!(emp.tuple_id, 0);
    assert_eq!(emp.values, vec![Value::Str("al".into()), Value::Int(4)]);

    // Deleting a premise tuple retracts the match: re-inserting the
    // same emp completes exactly one fresh match (no double-fire from
    // a stale partial).
    writer.delete("emp", TupleId(0)).unwrap();
    let again = writer
        .insert("emp", vec![Value::Str("al".into()), Value::Int(4)])
        .unwrap();
    assert_eq!(again.fired.len(), 1, "one firing after delete+reinsert");
    let event = watcher
        .wait_event(Duration::from_secs(5))
        .unwrap()
        .expect("re-completed join must be pushed");
    assert_eq!(event.bindings.len(), 2);
    server.shutdown().unwrap();
}

#[test]
fn shutdown_returns_the_engine_with_state_intact() {
    let (server, _) = start("handback", ServerOptions::default());
    let mut client = Client::connect(server.addr()).unwrap();
    client.create_relation(emp_schema()).unwrap();
    client
        .insert("emp", vec![Value::Str("ann".into()), Value::Int(1)])
        .unwrap();
    let engine = server.shutdown().expect("engine handed back");
    let relation = engine
        .engine()
        .db()
        .catalog()
        .relation("emp")
        .expect("relation survives");
    assert_eq!(relation.len(), 1);
}

#[test]
fn concurrent_clients_see_serial_wal_order() {
    let (server, _) = start("concurrent", ServerOptions::default());
    let mut setup = Client::connect(server.addr()).unwrap();
    setup
        .create_relation(Schema::builder("t").attr("v", AttrType::Int).build())
        .unwrap();

    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut seqs = Vec::new();
                for i in 0..50 {
                    let ack = client.insert("t", vec![Value::Int(c * 1000 + i)]).unwrap();
                    seqs.push(ack.seq);
                }
                seqs
            })
        })
        .collect();

    let mut all: Vec<u64> = Vec::new();
    for handle in handles {
        let seqs = handle.join().unwrap();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "each connection's seqs must be monotonic"
        );
        all.extend(seqs);
    }
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), 400, "every op got a distinct WAL sequence");
    server.shutdown().unwrap();
}

#[test]
fn trace_ids_round_trip_into_server_side_spans_and_slow_ops() {
    let registry = Arc::new(Registry::new());
    let mut engine = DurableRuleEngine::open_with_telemetry(
        tempdir("trace-ids"),
        FunctionRegistry::default(),
        ActionRegistry::new(),
        Options {
            sync: SyncPolicy::EveryN(64),
            snapshot_every: None,
        },
        Arc::clone(&registry),
        telemetry::Tracer::new(4096),
    )
    .unwrap();
    engine.attach_profiler(telemetry::Profiler::new(&registry));
    let server = serve(
        "127.0.0.1:0",
        engine,
        ServerOptions {
            // Zero threshold: every request lands in the slow-op ring.
            slow_op_threshold: Some(Duration::ZERO),
            ..ServerOptions::default()
        },
    )
    .unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    client.enable_trace_ids(0xabc0);
    client.create_relation(emp_schema()).unwrap();
    assert_eq!(client.last_trace_id(), Some(0xabc0));
    client
        .insert("emp", vec![Value::Str("ann".into()), Value::Int(2000)])
        .unwrap();
    assert_eq!(client.last_trace_id(), Some(0xabc1));
    // The same connection can drop back to the untraced byte format.
    client.disable_trace_ids();
    client.health().unwrap();

    let engine = server.shutdown().expect("engine handed back");
    let events = engine.tracer().events();
    let begins: Vec<_> = events
        .iter()
        .filter(|e| e.name == "server_request" && matches!(e.kind, telemetry::SpanEventKind::Begin))
        .collect();
    assert!(
        begins.len() >= 3,
        "each engine-served request opens a span, got {}",
        begins.len()
    );
    let trace_args: Vec<&str> = begins
        .iter()
        .flat_map(|e| e.args.iter())
        .filter(|(k, _)| *k == "trace")
        .map(|(_, v)| v.as_str())
        .collect();
    assert!(
        trace_args.contains(&"0xabc0"),
        "create_relation trace id missing"
    );
    assert!(trace_args.contains(&"0xabc1"), "insert trace id missing");
    assert!(
        begins
            .iter()
            .any(|e| e.args.contains(&("op", "insert".to_string()))),
        "spans carry the op label"
    );
    let untraced_health = begins.iter().any(|e| {
        e.args.contains(&("op", "health".to_string())) && e.args.iter().all(|(k, _)| *k != "trace")
    });
    assert!(
        untraced_health,
        "untraced request must open a trace-less span"
    );

    // The slow-op ring captured the traced insert with its id.
    let slow = engine.profiler().slow_ops();
    assert!(
        slow.iter()
            .any(|s| s.trace_id == Some(0xabc1) && s.op == "insert"),
        "slow-op ring must hold the traced insert, got {slow:?}"
    );
}
