//! Recovery under load: kill the real daemon mid-soak — after a WAL
//! append, before its reply — restart over the same directory, and
//! assert the client-observed committed prefix replays exactly.
//!
//! The daemon binary's `--crash-after N` aborts the process inside the
//! reply window, so this is a true `kill -9`-grade crash from the
//! client's perspective: the last acked op is durable, the in-flight
//! tail may or may not be.
//!
//! The invariant (under `SyncPolicy::Always`, the daemon's default):
//! with sequential values `0, 1, 2, …` inserted on one connection,
//! recovery must yield exactly the values `0..=k` for some `k` with
//! `last_acked <= k <= last_sent` — everything acked survives, nothing
//! is invented, and no gaps appear mid-stream.

use durable::{ActionRegistry, DurableRuleEngine, Options};
use predicate::FunctionRegistry;
use relation::{AttrType, Schema, Value};
use ruleserv::{Client, ClientError, Request};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    addr: std::net::SocketAddr,
}

fn spawn_daemon(dir: &std::path::Path, extra: &[&str]) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ruleserv"));
    cmd.arg("--dir")
        .arg(dir)
        .args(["--bind", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn ruleserv daemon");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("daemon printed nothing")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected banner: {first}"))
        .parse()
        .expect("parseable listen address");
    Daemon { child, addr }
}

impl Daemon {
    /// Graceful stop: close stdin (the daemon's run-until signal) and
    /// wait for a clean exit.
    fn stop(mut self) {
        drop(self.child.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                _ => {
                    let _ = self.child.kill();
                    panic!("daemon did not exit after stdin EOF");
                }
            }
        }
    }
}

#[test]
fn a_crash_between_append_and_reply_replays_the_committed_prefix() {
    let dir = std::env::temp_dir().join(format!("ruleserv-recovery-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Phase 1: a daemon rigged to abort after its 40th applied op —
    // mid-pipeline, after that op's WAL append, before its reply.
    let daemon = spawn_daemon(&dir, &["--crash-after", "40"]);
    let mut client = Client::connect(daemon.addr).unwrap();
    client
        .create_relation(Schema::builder("seq").attr("v", AttrType::Int).build())
        .unwrap();

    // Pipeline sequential inserts until the crash severs the socket.
    // `sent` counts requests on the wire; `acked` counts in-order Fire
    // replies received before the connection died.
    let mut sent: i64 = 0;
    let mut acked: i64 = 0;
    let mut died = false;
    'outer: for _ in 0..200 {
        for _ in 0..8 {
            let sendres = client.send(&Request::Apply(durable::Record::Insert {
                relation: "seq".into(),
                values: vec![Value::Int(sent)],
            }));
            if sendres.is_err() {
                died = true;
                break 'outer;
            }
            sent += 1;
        }
        while client.in_flight() > 4 {
            match client.recv_reply() {
                Ok(reply) => {
                    assert_eq!(
                        reply.kind(),
                        "fire",
                        "in-order ack stream broke before the crash"
                    );
                    acked += 1;
                }
                Err(ClientError::Io(_) | ClientError::Closed) => {
                    died = true;
                    break 'outer;
                }
                Err(e) => panic!("unexpected client error: {e}"),
            }
        }
    }
    // Drain any stragglers delivered before the abort.
    if !died {
        while client.in_flight() > 0 {
            match client.recv_reply() {
                Ok(_) => acked += 1,
                Err(_) => {
                    died = true;
                    break;
                }
            }
        }
    }
    assert!(died, "the daemon was rigged to crash but never did");
    assert!(acked >= 1, "some inserts must have been acked pre-crash");
    assert!(
        acked < sent,
        "the crash must land mid-pipeline (acked < sent)"
    );
    let exit = daemon.child.wait_with_output().unwrap();
    assert!(!exit.status.success(), "the daemon must have aborted");

    // Phase 2: restart the same daemon over the same directory. The
    // banner printing at all proves recovery replayed the WAL.
    let daemon = spawn_daemon(&dir, &[]);
    let mut client = Client::connect(daemon.addr).unwrap();
    let health = client.health().unwrap();
    assert!(
        health.contains("up 1"),
        "restarted daemon is healthy: {health}"
    );
    // New writes must keep working against the recovered state. The
    // probe value -1 is distinguishable from every phase-1 value.
    let post = client.insert("seq", vec![Value::Int(-1)]).unwrap();
    assert!(
        post.seq > acked as u64,
        "WAL sequence continues past the crash"
    );
    client.sync().unwrap();
    drop(client);
    daemon.stop();

    // Phase 3: open the directory in-process and inspect the exact
    // surviving values: `0..=k` with `acked-1 <= k <= sent-1`.
    let engine = DurableRuleEngine::open(
        &dir,
        FunctionRegistry::default(),
        ActionRegistry::new(),
        Options::default(),
    )
    .unwrap();
    let relation = engine
        .engine()
        .db()
        .catalog()
        .relation("seq")
        .expect("relation recovered");
    let mut values: Vec<i64> = relation
        .iter()
        .map(|(_, t)| match t.values().first() {
            Some(Value::Int(v)) => *v,
            other => panic!("unexpected value {other:?}"),
        })
        .collect();
    values.sort_unstable();
    // The restart probe (-1) plus a gapless phase-1 prefix 0..k.
    let expected: Vec<i64> = (-1..values.len() as i64 - 1).collect();
    assert_eq!(
        values, expected,
        "recovered values must be the probe plus a gapless prefix 0..k"
    );
    let k = values.len() as i64 - 1;
    assert!(
        k >= acked,
        "lost an acked insert: only {k} survive, {acked} were acked"
    );
    assert!(
        k <= sent,
        "recovered {k} inserts but only {sent} were ever sent"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
