//! The wire protocol: length-prefixed, checksummed frames.
//!
//! ## Frame format
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! [u32 len][u32 crc][u8 opcode][payload]
//! ```
//!
//! All integers little-endian. `len` counts the opcode byte plus the
//! payload (so a frame occupies `8 + len` bytes on the wire), and
//! `crc` is the WAL's CRC-32 (IEEE 802.3, [`durable::crc::Crc32`])
//! over the opcode byte and the payload. A frame whose length is
//! outside `1..=MAX_FRAME` or whose checksum mismatches is a protocol
//! error — unlike the WAL there is no torn-tail tolerance: a TCP
//! stream either delivers bytes intact or the connection dies.
//!
//! ## Opcode table
//!
//! Requests (client → server):
//!
//! | opcode | name        | payload                                   |
//! |--------|-------------|-------------------------------------------|
//! | `0x01` | `PING`      | empty                                     |
//! | `0x02` | `APPLY`     | a [`durable::Record`] (self-describing: its leading tag byte selects create/drop relation, add/remove rule, insert, update, delete, insert-batch) |
//! | `0x03` | `SUBSCRIBE` | empty — start streaming rule firings      |
//! | `0x04` | `UNSUBSCRIBE` | empty                                   |
//! | `0x05` | `HEALTH`    | empty                                     |
//! | `0x06` | `SYNC`      | empty — force a WAL fsync                 |
//!
//! Replies (server → client). Every request produces exactly one
//! reply, in request order; `EVENT` and `LAGGED` frames are *pushed*
//! (they answer no request) and may interleave anywhere:
//!
//! | opcode | name      | payload                                     |
//! |--------|-----------|---------------------------------------------|
//! | `0x81` | `PONG`    | empty                                       |
//! | `0x82` | `UNIT`    | empty — success with nothing to report      |
//! | `0x83` | `FIRE`    | `u64 seq, u64 ops, u32 n, n × (u32 rule_id, str name)` |
//! | `0x84` | `RULE_ID` | `u32` — the id `ADD_RULE` allocated         |
//! | `0x85` | `HEALTH`  | `str` — the engine's health text            |
//! | `0x86` | `ERR`     | `str` — the operation failed (it may still be WAL-logged; see durable's semantics) |
//! | `0x87` | `BUSY`    | empty — engine queue full, op NOT logged; retry |
//! | `0x88` | `EVENT`   | `u64 seq, u32 rule_id, str name` — one rule firing. A firing of a multi-premise (join) rule appends its bound tuples: `u32 n, n × (str relation, u32 tuple_id, u32 k, k × value)`. The suffix is absent (not zero-length) for plain firings, so the frame is byte-identical to the pre-join encoding |
//! | `0x89` | `LAGGED`  | `u64 n` — n events were dropped because this connection's reply queue was full |
//!
//! Strings use [`relation::codec`]'s length-prefixed UTF-8 encoding.
//!
//! ## Trace ids
//!
//! Any request frame may carry an optional 8-byte little-endian trace
//! id as a payload *suffix* (after the empty payload of `PING`-class
//! ops, after the record of `APPLY`). Like the `EVENT` bindings
//! suffix, absence is encoded by omission — a request without a trace
//! id is byte-identical to the pre-trace protocol, so old clients and
//! new servers (and vice versa, untraced) interoperate frame-for-frame.
//! [`Request::decode_traced`] accepts both forms;
//! [`Request::decode`] stays strict and rejects the suffix. The id is
//! request metadata, not data: the server stamps it on its
//! `server_request` span and the slow-op log, and it never reaches
//! the WAL.

use durable::crc::Crc32;
use durable::Record;
use relation::codec::{self, CodecError, Reader, Writer};
use relation::Value;
use std::io::{self, Read, Write};

/// Upper bound on a frame's `len` field — same ceiling as the WAL's
/// frames; anything larger is corruption or abuse, not data.
pub const MAX_FRAME: u32 = 1 << 26;

/// Request opcodes.
pub const OP_PING: u8 = 0x01;
/// See [`OP_PING`].
pub const OP_APPLY: u8 = 0x02;
/// See [`OP_PING`].
pub const OP_SUBSCRIBE: u8 = 0x03;
/// See [`OP_PING`].
pub const OP_UNSUBSCRIBE: u8 = 0x04;
/// See [`OP_PING`].
pub const OP_HEALTH: u8 = 0x05;
/// See [`OP_PING`].
pub const OP_SYNC: u8 = 0x06;

/// Reply opcodes.
pub const OP_PONG: u8 = 0x81;
/// See [`OP_PONG`].
pub const OP_UNIT: u8 = 0x82;
/// See [`OP_PONG`].
pub const OP_FIRE: u8 = 0x83;
/// See [`OP_PONG`].
pub const OP_RULE_ID: u8 = 0x84;
/// See [`OP_PONG`].
pub const OP_HEALTH_REPLY: u8 = 0x85;
/// See [`OP_PONG`].
pub const OP_ERR: u8 = 0x86;
/// See [`OP_PONG`].
pub const OP_BUSY: u8 = 0x87;
/// See [`OP_PONG`].
pub const OP_EVENT: u8 = 0x88;
/// See [`OP_PONG`].
pub const OP_LAGGED: u8 = 0x89;

/// Protocol-layer errors.
#[derive(Debug)]
pub enum ProtoError {
    /// Socket failure (including a connection torn mid-frame).
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame or payload.
    Corrupt(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "protocol i/o: {e}"),
            ProtoError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<CodecError> for ProtoError {
    fn from(e: CodecError) -> Self {
        ProtoError::Corrupt(e.to_string())
    }
}

/// Serializes one frame into a buffer (one `write_all` keeps a frame
/// contiguous even when several threads share fan-in upstream).
pub fn encode_frame(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let len = (1 + payload.len()) as u32;
    let mut crc = Crc32::new();
    crc.update(&[opcode]);
    crc.update(payload);
    let mut out = Vec::with_capacity(8 + 1 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.push(opcode);
    out.extend_from_slice(payload);
    out
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(opcode, payload))
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream at a frame
/// boundary; EOF mid-frame is an [`io::ErrorKind::UnexpectedEof`]
/// error, and a bad length or checksum is [`ProtoError::Corrupt`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, ProtoError> {
    let mut head = [0u8; 8];
    // A clean close before the first header byte is not an error.
    let mut got = 0;
    while got < head.len() {
        match r.read(&mut head[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(ProtoError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    // srclint:allow(no-panic-in-lib): constant-width header slice — try_into to a fixed array cannot fail
    let len = u32::from_le_bytes(head[..4].try_into().unwrap());
    // srclint:allow(no-panic-in-lib): constant-width header slice — try_into to a fixed array cannot fail
    let stored_crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if !(1..=MAX_FRAME).contains(&len) {
        return Err(ProtoError::Corrupt(format!(
            "frame length {len} out of range"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut crc = Crc32::new();
    crc.update(&body);
    if crc.finish() != stored_crc {
        return Err(ProtoError::Corrupt("frame checksum mismatch".into()));
    }
    let Some((&opcode, payload)) = body.split_first() else {
        return Err(ProtoError::Corrupt("empty frame body".into()));
    };
    Ok(Some((opcode, payload.to_vec())))
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe, answered by the session thread without queueing
    /// behind the engine.
    Ping,
    /// One logged engine mutation — the payload reuses the WAL's
    /// self-describing [`Record`] encoding, so the wire and the log
    /// speak the same dialect.
    Apply(Record),
    /// Start streaming rule-firing [`Event`]s to this connection.
    Subscribe,
    /// Stop streaming.
    Unsubscribe,
    /// The engine's health text (serialized through the engine queue,
    /// so it reflects a real serialization point).
    Health,
    /// Force a WAL fsync (group-commit flush point).
    Sync,
}

impl Request {
    /// `(opcode, payload)` for the wire.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Ping => (OP_PING, Vec::new()),
            Request::Apply(record) => (OP_APPLY, record.encode()),
            Request::Subscribe => (OP_SUBSCRIBE, Vec::new()),
            Request::Unsubscribe => (OP_UNSUBSCRIBE, Vec::new()),
            Request::Health => (OP_HEALTH, Vec::new()),
            Request::Sync => (OP_SYNC, Vec::new()),
        }
    }

    /// [`encode`](Self::encode) with an optional trace id appended as
    /// an 8-byte little-endian payload suffix. `None` produces exactly
    /// the bytes [`encode`](Self::encode) does.
    pub fn encode_traced(&self, trace: Option<u64>) -> (u8, Vec<u8>) {
        let (opcode, mut payload) = self.encode();
        if let Some(id) = trace {
            payload.extend_from_slice(&id.to_le_bytes());
        }
        (opcode, payload)
    }

    /// Writes the request as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let (opcode, payload) = self.encode();
        write_frame(w, opcode, &payload)
    }

    /// Writes the request as one frame with an optional trace-id
    /// suffix.
    pub fn write_to_traced(&self, w: &mut impl Write, trace: Option<u64>) -> io::Result<()> {
        let (opcode, payload) = self.encode_traced(trace);
        write_frame(w, opcode, &payload)
    }

    /// Decodes a request frame that may carry the trace-id suffix.
    /// The suffix is all-or-nothing: exactly 8 trailing bytes decode
    /// to `Some(id)`, zero to `None`, anything else is corruption.
    pub fn decode_traced(opcode: u8, payload: &[u8]) -> Result<(Request, Option<u64>), ProtoError> {
        let split_trace = |rest: &[u8]| -> Result<Option<u64>, ProtoError> {
            match rest.len() {
                0 => Ok(None),
                8 => {
                    // srclint:allow(no-panic-in-lib): length checked — try_into to [u8; 8] cannot fail
                    Ok(Some(u64::from_le_bytes(rest.try_into().unwrap())))
                }
                n => Err(ProtoError::Corrupt(format!(
                    "trace suffix must be 0 or 8 bytes, got {n}"
                ))),
            }
        };
        if opcode == OP_APPLY {
            let (record, consumed) = Record::decode_prefix(payload)?;
            let trace = split_trace(&payload[consumed..])?;
            return Ok((Request::Apply(record), trace));
        }
        let trace = split_trace(payload)?;
        let req = Request::decode(opcode, &payload[..payload.len() - trace.map_or(0, |_| 8)])?;
        Ok((req, trace))
    }

    /// Decodes a request frame (strict: a trace-id suffix is rejected;
    /// use [`decode_traced`](Self::decode_traced) to accept it).
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        let empty = |req: Request| {
            if payload.is_empty() {
                Ok(req)
            } else {
                Err(ProtoError::Corrupt(format!(
                    "opcode {opcode:#04x} carries {} unexpected payload bytes",
                    payload.len()
                )))
            }
        };
        match opcode {
            OP_PING => empty(Request::Ping),
            OP_APPLY => Ok(Request::Apply(Record::decode(payload)?)),
            OP_SUBSCRIBE => empty(Request::Subscribe),
            OP_UNSUBSCRIBE => empty(Request::Unsubscribe),
            OP_HEALTH => empty(Request::Health),
            OP_SYNC => empty(Request::Sync),
            other => Err(ProtoError::Corrupt(format!(
                "unknown request opcode {other:#04x}"
            ))),
        }
    }
}

/// What one mutation did: its WAL sequence number (the client-visible
/// commit coordinate) and the rule firings it triggered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FireSummary {
    /// The WAL sequence number the operation was logged under. After a
    /// crash, recovery replays a prefix of sequence numbers — an acked
    /// `seq` under `SyncPolicy::Always` is guaranteed replayed.
    pub seq: u64,
    /// Database operations applied (1 external + cascaded).
    pub ops_applied: u64,
    /// `(rule id, rule name)` in firing order across the whole chain.
    pub fired: Vec<(u32, String)>,
}

/// One tuple bound by a premise of a multi-premise rule firing, in
/// premise order.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBinding {
    /// The premise's relation.
    pub relation: String,
    /// The bound tuple's id within that relation.
    pub tuple_id: u32,
    /// The bound tuple's values.
    pub values: Vec<Value>,
}

/// One rule firing pushed to a subscribed connection.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// WAL sequence number of the mutation that fired the rule.
    pub seq: u64,
    /// The firing rule's id.
    pub rule_id: u32,
    /// The firing rule's name.
    pub rule: String,
    /// For join-rule firings: every bound tuple, one per premise in
    /// premise order. Empty for single-relation firings — and encoded
    /// by *omission* (no trailing count), so old-format frames decode
    /// and plain firings encode byte-identically to servers that
    /// predate joins.
    pub bindings: Vec<EventBinding>,
}

/// A server reply (or pushed frame).
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Success with nothing else to report (create/drop relation,
    /// remove rule, subscribe, unsubscribe, sync).
    Unit,
    /// A mutation succeeded.
    Fire(FireSummary),
    /// A rule was added under this id.
    RuleId(u32),
    /// The health text.
    Health(String),
    /// The operation failed; the message is the engine error.
    Err(String),
    /// The engine queue was full — the operation was *not* logged and
    /// not applied; back off and retry.
    Busy,
    /// Pushed rule firing (subscriptions only; answers no request).
    Event(Event),
    /// Pushed lag notice: this many events were dropped while the
    /// connection's reply queue was full.
    Lagged(u64),
}

impl Reply {
    /// `(opcode, payload)` for the wire.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = Writer::new();
        match self {
            Reply::Pong => (OP_PONG, Vec::new()),
            Reply::Unit => (OP_UNIT, Vec::new()),
            Reply::Fire(f) => {
                w.u64(f.seq);
                w.u64(f.ops_applied);
                w.u32(f.fired.len() as u32);
                for (id, name) in &f.fired {
                    w.u32(*id);
                    w.str(name);
                }
                (OP_FIRE, w.into_bytes())
            }
            Reply::RuleId(id) => {
                w.u32(*id);
                (OP_RULE_ID, w.into_bytes())
            }
            Reply::Health(text) => {
                w.str(text);
                (OP_HEALTH_REPLY, w.into_bytes())
            }
            Reply::Err(msg) => {
                w.str(msg);
                (OP_ERR, w.into_bytes())
            }
            Reply::Busy => (OP_BUSY, Vec::new()),
            Reply::Event(e) => {
                w.u64(e.seq);
                w.u32(e.rule_id);
                w.str(&e.rule);
                if !e.bindings.is_empty() {
                    w.u32(e.bindings.len() as u32);
                    for b in &e.bindings {
                        w.str(&b.relation);
                        w.u32(b.tuple_id);
                        w.u32(b.values.len() as u32);
                        for v in &b.values {
                            codec::encode_value(&mut w, v);
                        }
                    }
                }
                (OP_EVENT, w.into_bytes())
            }
            Reply::Lagged(n) => {
                w.u64(*n);
                (OP_LAGGED, w.into_bytes())
            }
        }
    }

    /// Writes the reply as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let (opcode, payload) = self.encode();
        write_frame(w, opcode, &payload)
    }

    /// Decodes a reply frame.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Reply, ProtoError> {
        let mut r = Reader::new(payload);
        let reply = match opcode {
            OP_PONG => Reply::Pong,
            OP_UNIT => Reply::Unit,
            OP_FIRE => {
                let seq = r.u64()?;
                let ops_applied = r.u64()?;
                let n = r.u32()? as usize;
                if n > r.remaining() {
                    return Err(ProtoError::Corrupt(format!(
                        "firing count {n} exceeds remaining {}",
                        r.remaining()
                    )));
                }
                let mut fired = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = r.u32()?;
                    let name = r.str()?;
                    fired.push((id, name));
                }
                Reply::Fire(FireSummary {
                    seq,
                    ops_applied,
                    fired,
                })
            }
            OP_RULE_ID => Reply::RuleId(r.u32()?),
            OP_HEALTH_REPLY => Reply::Health(r.str()?),
            OP_ERR => Reply::Err(r.str()?),
            OP_BUSY => Reply::Busy,
            OP_EVENT => {
                let seq = r.u64()?;
                let rule_id = r.u32()?;
                let rule = r.str()?;
                // The bindings suffix is optional: frames from (or for)
                // peers that predate joins simply end here.
                let mut bindings = Vec::new();
                if !r.is_empty() {
                    let n = r.u32()? as usize;
                    if n > r.remaining() {
                        return Err(ProtoError::Corrupt(format!(
                            "binding count {n} exceeds remaining {}",
                            r.remaining()
                        )));
                    }
                    for _ in 0..n {
                        let relation = r.str()?;
                        let tuple_id = r.u32()?;
                        let k = r.u32()? as usize;
                        if k > r.remaining() {
                            return Err(ProtoError::Corrupt(format!(
                                "value count {k} exceeds remaining {}",
                                r.remaining()
                            )));
                        }
                        let mut values = Vec::with_capacity(k);
                        for _ in 0..k {
                            values.push(codec::decode_value(&mut r)?);
                        }
                        bindings.push(EventBinding {
                            relation,
                            tuple_id,
                            values,
                        });
                    }
                }
                Reply::Event(Event {
                    seq,
                    rule_id,
                    rule,
                    bindings,
                })
            }
            OP_LAGGED => Reply::Lagged(r.u64()?),
            other => {
                return Err(ProtoError::Corrupt(format!(
                    "unknown reply opcode {other:#04x}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(ProtoError::Corrupt(format!(
                "{} trailing bytes after reply",
                r.remaining()
            )));
        }
        Ok(reply)
    }

    /// A short human label for the reply kind (soak reporting,
    /// mismatch diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            Reply::Pong => "pong",
            Reply::Unit => "unit",
            Reply::Fire(_) => "fire",
            Reply::RuleId(_) => "rule_id",
            Reply::Health(_) => "health",
            Reply::Err(_) => "err",
            Reply::Busy => "busy",
            Reply::Event(_) => "event",
            Reply::Lagged(_) => "lagged",
        }
    }
}

/// The per-op label a [`Request`] is metered under
/// (`server_requests_total{op=…}`).
pub fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Ping => "ping",
        Request::Apply(record) => record_op_name(record),
        Request::Subscribe => "subscribe",
        Request::Unsubscribe => "unsubscribe",
        Request::Health => "health",
        Request::Sync => "sync",
    }
}

/// The per-op label of one mutation record.
pub fn record_op_name(record: &Record) -> &'static str {
    match record {
        Record::CreateRelation { .. } => "create_relation",
        Record::DropRelation { .. } => "drop_relation",
        Record::AddRule { .. } => "add_rule",
        Record::RemoveRule { .. } => "remove_rule",
        Record::Insert { .. } => "insert",
        Record::Update { .. } => "update",
        Record::Delete { .. } => "delete",
        Record::InsertBatch { .. } => "insert_batch",
    }
}

/// Every op label, in a fixed order (metric pre-minting, soak tables).
pub const OP_NAMES: &[&str] = &[
    "ping",
    "create_relation",
    "drop_relation",
    "add_rule",
    "remove_rule",
    "insert",
    "update",
    "delete",
    "insert_batch",
    "subscribe",
    "unsubscribe",
    "health",
    "sync",
];

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{AttrType, Schema, Value};
    use rules::EventMask;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Apply(Record::CreateRelation {
                schema: Schema::builder("emp")
                    .attr("name", AttrType::Str)
                    .attr("salary", AttrType::Int)
                    .build(),
            }),
            Request::Apply(Record::Insert {
                relation: "emp".into(),
                values: vec![Value::str("al"), Value::Int(9000)],
            }),
            Request::Apply(Record::AddRule {
                spec: durable::RuleSpec {
                    name: "underpaid".into(),
                    condition: "emp.salary < 15000".into(),
                    mask: EventMask::ALL,
                    priority: 2,
                    action: durable::ActionSpec::Log("low".into()),
                },
            }),
            Request::Subscribe,
            Request::Unsubscribe,
            Request::Health,
            Request::Sync,
        ]
    }

    fn sample_replies() -> Vec<Reply> {
        vec![
            Reply::Pong,
            Reply::Unit,
            Reply::Fire(FireSummary {
                seq: 42,
                ops_applied: 3,
                fired: vec![(0, "underpaid".into()), (2, "audit".into())],
            }),
            Reply::RuleId(7),
            Reply::Health("up 1\nwal_next_seq 9\n".into()),
            Reply::Err("no such relation".into()),
            Reply::Busy,
            Reply::Event(Event {
                seq: 43,
                rule_id: 2,
                rule: "audit".into(),
                bindings: Vec::new(),
            }),
            Reply::Event(Event {
                seq: 44,
                rule_id: 3,
                rule: "same-dept".into(),
                bindings: vec![
                    EventBinding {
                        relation: "emp".into(),
                        tuple_id: 0,
                        values: vec![Value::str("al"), Value::Int(4)],
                    },
                    EventBinding {
                        relation: "dept".into(),
                        tuple_id: 7,
                        values: vec![Value::Int(4)],
                    },
                ],
            }),
            Reply::Lagged(17),
        ]
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let mut wire = Vec::new();
        for req in sample_requests() {
            req.write_to(&mut wire).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for expected in sample_requests() {
            let (op, payload) = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(Request::decode(op, &payload).unwrap(), expected);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn replies_round_trip_through_frames() {
        let mut wire = Vec::new();
        for reply in sample_replies() {
            reply.write_to(&mut wire).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for expected in sample_replies() {
            let (op, payload) = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(Reply::decode(op, &payload).unwrap(), expected);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn torn_frames_and_flips_are_errors_not_panics() {
        let mut wire = Vec::new();
        Request::Apply(Record::Insert {
            relation: "emp".into(),
            values: vec![Value::Int(1), Value::str("x")],
        })
        .write_to(&mut wire)
        .unwrap();
        // Every strict prefix is either a clean EOF (empty) or a torn
        // frame (UnexpectedEof) — never a panic, never a bogus frame.
        for cut in 0..wire.len() {
            let mut cursor = std::io::Cursor::new(&wire[..cut]);
            match read_frame(&mut cursor) {
                Ok(None) => assert_eq!(cut, 0),
                Ok(Some(_)) => panic!("prefix of {cut} bytes parsed as a frame"),
                Err(ProtoError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof)
                }
                Err(ProtoError::Corrupt(_)) => panic!("prefix misread as corruption"),
            }
        }
        // Any single-bit flip is caught by the checksum (or rejected
        // as a nonsense length before the body is read).
        for byte in 0..wire.len() {
            let mut flipped = wire.clone();
            flipped[byte] ^= 0x40;
            let mut cursor = std::io::Cursor::new(flipped);
            match read_frame(&mut cursor) {
                Err(_) => {}
                Ok(frame) => {
                    // A flip in the length field can shorten the frame
                    // to a valid-looking but checksum-failing body; it
                    // must never round-trip to the original request.
                    let (op, payload) = frame.unwrap();
                    assert!(
                        Request::decode(op, &payload).is_err(),
                        "bit flip at byte {byte} survived"
                    );
                }
            }
        }
    }

    #[test]
    fn plain_event_encoding_is_byte_identical_to_pre_join_format() {
        // The exact frame a pre-join server would push: no trailing
        // binding count, not a zero count.
        let (op, payload) = Reply::Event(Event {
            seq: 43,
            rule_id: 2,
            rule: "audit".into(),
            bindings: Vec::new(),
        })
        .encode();
        assert_eq!(op, OP_EVENT);
        let mut legacy = Writer::new();
        legacy.u64(43);
        legacy.u32(2);
        legacy.str("audit");
        assert_eq!(payload, legacy.into_bytes());
        // And a legacy frame decodes to an event with no bindings.
        match Reply::decode(OP_EVENT, &payload).unwrap() {
            Reply::Event(e) => assert!(e.bindings.is_empty()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn truncated_event_bindings_are_corrupt_not_panics() {
        let (_, payload) = Reply::Event(Event {
            seq: 1,
            rule_id: 0,
            rule: "j".into(),
            bindings: vec![EventBinding {
                relation: "emp".into(),
                tuple_id: 3,
                values: vec![Value::Int(9), Value::str("x")],
            }],
        })
        .encode();
        // Every strict prefix past the legacy portion must error
        // cleanly (the legacy prefix itself decodes as a plain event).
        let mut legacy_len = Writer::new();
        legacy_len.u64(1);
        legacy_len.u32(0);
        legacy_len.str("j");
        let legacy_len = legacy_len.len();
        for cut in legacy_len + 1..payload.len() {
            assert!(
                Reply::decode(OP_EVENT, &payload[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn traced_requests_round_trip_with_and_without_ids() {
        for (i, req) in sample_requests().into_iter().enumerate() {
            for trace in [None, Some(0xdead_beef_0000_0000 + i as u64)] {
                let (op, payload) = req.encode_traced(trace);
                let (got, got_trace) = Request::decode_traced(op, &payload).unwrap();
                assert_eq!(got, req);
                assert_eq!(got_trace, trace);
            }
        }
    }

    #[test]
    fn untraced_encoding_is_byte_identical_to_pre_trace_format() {
        for req in sample_requests() {
            assert_eq!(req.encode_traced(None), req.encode());
        }
    }

    #[test]
    fn strict_decode_rejects_trace_suffixes() {
        for req in sample_requests() {
            let (op, traced) = req.encode_traced(Some(7));
            assert!(
                Request::decode(op, &traced).is_err(),
                "strict decode accepted a traced {op:#04x}"
            );
        }
    }

    #[test]
    fn torn_trace_suffixes_are_corrupt_not_panics() {
        for req in sample_requests() {
            let (op, full) = req.encode_traced(Some(0x0123_4567_89ab_cdef));
            // Remainders of 1..=7 bytes are neither absent nor a full
            // id — corruption, decoded as neither form.
            for cut in full.len() - 7..full.len() {
                assert!(
                    Request::decode_traced(op, &full[..cut]).is_err(),
                    "torn suffix at {cut} decoded for {op:#04x}"
                );
            }
            // Cutting the whole suffix yields the untraced form.
            let (got, trace) = Request::decode_traced(op, &full[..full.len() - 8]).unwrap();
            assert_eq!(got, req);
            assert_eq!(trace, None);
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_opcodes_are_corrupt() {
        assert!(Request::decode(0x7f, &[]).is_err());
        assert!(Reply::decode(0x01, &[]).is_err());
    }

    #[test]
    fn op_names_cover_every_request_shape() {
        for req in sample_requests() {
            assert!(OP_NAMES.contains(&op_name(&req)));
        }
    }
}
