//! # Rule server: the durable engine as a network daemon
//!
//! The paper's predicate index matters at scale only if many clients
//! can drive one engine concurrently. This crate wraps
//! [`durable::DurableRuleEngine`] in a standalone daemon speaking a
//! length-prefixed framed protocol over `std::net` — no third-party
//! dependencies, same constraint as the rest of the workspace.
//!
//! * [`proto`] — the wire format: `[u32 len][u32 crc][u8 opcode]
//!   [payload]` frames (the CRC-32 is the WAL's), a request opcode
//!   table reusing the WAL's self-describing [`durable::Record`]
//!   encoding for mutations, and typed [`Request`]/[`Reply`] values.
//! * [`server`] — the daemon: one engine thread owning the durable
//!   engine (WAL ordering stays serial), one reader + writer thread
//!   per connection, pipelined requests with per-connection reply
//!   slots that make reply order structurally equal to request order,
//!   bounded-queue backpressure answering [`Reply::Busy`] instead of
//!   buffering, and subscription streams of rule firings with
//!   drop-and-count lag accounting.
//! * [`client`] — a typed synchronous client: call-and-wait methods
//!   plus an explicit pipelining API ([`Client::send`] /
//!   [`Client::recv_reply`]) and event draining.
//!
//! Binaries: `ruleserv` (the daemon, with optional telemetry HTTP
//! exposition) and `soak` (N concurrent connections of mixed traffic,
//! verifying zero lost/reordered replies and reporting
//! throughput/latency as `BENCH_server.json`).
//!
//! ```no_run
//! use durable::{ActionRegistry, DurableRuleEngine, Options};
//! use predicate::FunctionRegistry;
//! use relation::{AttrType, Schema, Value};
//! use ruleserv::{serve, Client, ServerOptions};
//!
//! let engine = DurableRuleEngine::open(
//!     "/tmp/ruleserv-demo",
//!     FunctionRegistry::default(),
//!     ActionRegistry::new(),
//!     Options::default(),
//! )
//! .unwrap();
//! let server = serve("127.0.0.1:0", engine, ServerOptions::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! client
//!     .create_relation(Schema::builder("emp").attr("salary", AttrType::Int).build())
//!     .unwrap();
//! let ack = client.insert("emp", vec![Value::Int(9000)]).unwrap();
//! println!("logged as WAL seq {}", ack.seq);
//! let _engine = server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod client;
mod metrics;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use proto::{Event, FireSummary, ProtoError, Reply, Request};
pub use server::{serve, ServerHandle, ServerOptions};
