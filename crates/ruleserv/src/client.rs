//! Typed client for the rule server.
//!
//! [`Client`] is a synchronous, single-threaded handle over one TCP
//! connection. Two usage styles:
//!
//! * **Call-and-wait** — the typed methods ([`Client::insert`],
//!   [`Client::add_rule`], …) send one request and block for its
//!   reply.
//! * **Pipelined** — [`Client::send`] queues requests without waiting
//!   (the server permits a client to have many requests in flight; see
//!   `ServerOptions::pipeline_cap`), then [`Client::recv_reply`] reads
//!   replies back *in request order*. This is how the soak harness
//!   drives throughput: N in flight amortises the round trip.
//!
//! Pushed frames ([`Event`] from subscriptions, `Lagged` notices) can
//! interleave with replies at any point; the reply readers divert them
//! into an internal queue, drained with [`Client::take_events`] /
//! [`Client::lagged`], and [`Client::wait_event`] blocks for the next
//! one when the connection is otherwise idle.

use crate::proto::{read_frame, Event, FireSummary, ProtoError, Reply, Request};
use durable::{Record, RuleSpec};
use relation::{Schema, TupleId, Value};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(io::Error),
    /// The server sent bytes that do not parse.
    Corrupt(String),
    /// The server replied `Err` — the operation was rejected.
    Server(String),
    /// The server replied `Busy` — the engine queue was full; the
    /// operation was not applied and can be retried.
    Busy,
    /// Clean close while a reply was still owed.
    Closed,
    /// Protocol confusion: a reply of the wrong shape for the request.
    Unexpected { wanted: &'static str, got: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Corrupt(m) => write!(f, "corrupt reply: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Busy => write!(f, "server busy (engine queue full)"),
            ClientError::Closed => write!(f, "connection closed with replies outstanding"),
            ClientError::Unexpected { wanted, got } => {
                write!(f, "expected a {wanted} reply, got {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            ProtoError::Corrupt(m) => ClientError::Corrupt(m),
        }
    }
}

/// One connection to a rule server.
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    events: VecDeque<Event>,
    lagged: u64,
    /// Requests sent minus replies received.
    in_flight: u64,
    /// When set, the trace id the *next* request will carry (then
    /// incremented); `None` = untraced, byte-identical wire format.
    trace_next: Option<u64>,
    /// The trace id the most recent request carried.
    trace_last: Option<u64>,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, no read timeout).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            writer: BufWriter::with_capacity(64 * 1024, stream),
            reader: BufReader::with_capacity(64 * 1024, read_half),
            events: VecDeque::new(),
            lagged: 0,
            in_flight: 0,
            trace_next: None,
            trace_last: None,
        })
    }

    /// Requests currently in flight (sent, reply not yet read).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Starts stamping a trace id on every subsequent request: `seed`
    /// on the next one, incrementing per request. The server echoes
    /// the id into its `server_request` span and slow-op log, so a
    /// client-side ordinal (or an upstream correlation id) links a
    /// wire request to the engine-side evidence.
    pub fn enable_trace_ids(&mut self, seed: u64) {
        self.trace_next = Some(seed);
    }

    /// Stops stamping trace ids (requests revert to the pre-trace
    /// byte format).
    pub fn disable_trace_ids(&mut self) {
        self.trace_next = None;
    }

    /// The trace id the most recently sent request carried, if any.
    pub fn last_trace_id(&self) -> Option<u64> {
        self.trace_last
    }

    /// Queues one request without waiting for its reply (pipelining).
    /// Buffered; [`recv_reply`](Self::recv_reply) flushes before
    /// reading, or call [`flush`](Self::flush) explicitly.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let trace = self.trace_next;
        request.write_to_traced(&mut self.writer, trace)?;
        if let Some(id) = trace {
            self.trace_next = Some(id.wrapping_add(1));
            self.trace_last = Some(id);
        }
        self.in_flight += 1;
        Ok(())
    }

    /// Pushes buffered requests onto the wire.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next *reply* (in request order), diverting pushed
    /// event/lag frames into the event queue.
    pub fn recv_reply(&mut self) -> Result<Reply, ClientError> {
        self.flush()?;
        loop {
            let Some((opcode, payload)) = read_frame(&mut self.reader)? else {
                return Err(ClientError::Closed);
            };
            match Reply::decode(opcode, &payload)? {
                Reply::Event(e) => self.events.push_back(e),
                Reply::Lagged(n) => self.lagged += n,
                reply => {
                    self.in_flight = self.in_flight.saturating_sub(1);
                    return Ok(reply);
                }
            }
        }
    }

    /// Events received so far (subscriptions), in arrival order.
    pub fn take_events(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    /// Total events the server reported dropping because this
    /// connection's reply queue was full.
    pub fn lagged(&self) -> u64 {
        self.lagged
    }

    /// Blocks up to `timeout` for the next pushed event while the
    /// connection is idle (no replies outstanding). Returns `None` on
    /// timeout.
    pub fn wait_event(&mut self, timeout: Duration) -> Result<Option<Event>, ClientError> {
        if let Some(e) = self.events.pop_front() {
            return Ok(Some(e));
        }
        self.flush()?;
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        let result = match read_frame(&mut self.reader) {
            Ok(Some((opcode, payload))) => match Reply::decode(opcode, &payload)? {
                Reply::Event(e) => Ok(Some(e)),
                Reply::Lagged(n) => {
                    self.lagged += n;
                    Ok(None)
                }
                reply => Err(ClientError::Unexpected {
                    wanted: "event",
                    got: reply.kind().to_string(),
                }),
            },
            Ok(None) => Err(ClientError::Closed),
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e.into()),
        };
        self.reader.get_ref().set_read_timeout(None)?;
        result
    }

    /// Sends one request and reads its reply.
    pub fn call(&mut self, request: &Request) -> Result<Reply, ClientError> {
        self.send(request)?;
        self.recv_reply()
    }

    /// Liveness probe (answered by the session thread even when the
    /// engine is saturated).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected("pong", other)),
        }
    }

    /// Creates a relation.
    pub fn create_relation(&mut self, schema: Schema) -> Result<(), ClientError> {
        self.unit_call(&Request::Apply(Record::CreateRelation { schema }))
    }

    /// Drops a relation (and every rule condition on it).
    pub fn drop_relation(&mut self, name: &str) -> Result<(), ClientError> {
        self.unit_call(&Request::Apply(Record::DropRelation {
            name: name.to_string(),
        }))
    }

    /// Adds a rule, returning its server-assigned id.
    pub fn add_rule(&mut self, spec: RuleSpec) -> Result<u32, ClientError> {
        match self.call(&Request::Apply(Record::AddRule { spec }))? {
            Reply::RuleId(id) => Ok(id),
            other => Err(unexpected("rule_id", other)),
        }
    }

    /// Removes a rule.
    pub fn remove_rule(&mut self, id: u32) -> Result<(), ClientError> {
        self.unit_call(&Request::Apply(Record::RemoveRule { id }))
    }

    /// Inserts a tuple; returns its WAL sequence and rule firings.
    pub fn insert(
        &mut self,
        relation: &str,
        values: Vec<Value>,
    ) -> Result<FireSummary, ClientError> {
        self.fire_call(&Request::Apply(Record::Insert {
            relation: relation.to_string(),
            values,
        }))
    }

    /// Updates a tuple in place.
    pub fn update(
        &mut self,
        relation: &str,
        id: TupleId,
        values: Vec<Value>,
    ) -> Result<FireSummary, ClientError> {
        self.fire_call(&Request::Apply(Record::Update {
            relation: relation.to_string(),
            id: id.0,
            values,
        }))
    }

    /// Deletes a tuple.
    pub fn delete(&mut self, relation: &str, id: TupleId) -> Result<FireSummary, ClientError> {
        self.fire_call(&Request::Apply(Record::Delete {
            relation: relation.to_string(),
            id: id.0,
        }))
    }

    /// Inserts a batch, running the rule chain once over it.
    pub fn insert_batch(
        &mut self,
        relation: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<FireSummary, ClientError> {
        self.fire_call(&Request::Apply(Record::InsertBatch {
            relation: relation.to_string(),
            rows,
        }))
    }

    /// Starts streaming rule firings to this connection.
    pub fn subscribe(&mut self) -> Result<(), ClientError> {
        self.unit_call(&Request::Subscribe)
    }

    /// Stops the stream (already-pushed events still arrive).
    pub fn unsubscribe(&mut self) -> Result<(), ClientError> {
        self.unit_call(&Request::Unsubscribe)
    }

    /// The engine's health text (`up 1\nwal_next_seq …`).
    pub fn health(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Health)? {
            Reply::Health(text) => Ok(text),
            other => Err(unexpected("health", other)),
        }
    }

    /// Forces a WAL fsync (group-commit flush point).
    pub fn sync(&mut self) -> Result<(), ClientError> {
        self.unit_call(&Request::Sync)
    }

    fn unit_call(&mut self, request: &Request) -> Result<(), ClientError> {
        match self.call(request)? {
            Reply::Unit => Ok(()),
            other => Err(unexpected("unit", other)),
        }
    }

    fn fire_call(&mut self, request: &Request) -> Result<FireSummary, ClientError> {
        match self.call(request)? {
            Reply::Fire(summary) => Ok(summary),
            other => Err(unexpected("fire", other)),
        }
    }
}

/// Maps non-matching replies to the right error: `Err`/`Busy` are
/// domain outcomes, anything else is protocol confusion.
fn unexpected(wanted: &'static str, got: Reply) -> ClientError {
    match got {
        Reply::Err(msg) => ClientError::Server(msg),
        Reply::Busy => ClientError::Busy,
        other => ClientError::Unexpected {
            wanted,
            got: other.kind().to_string(),
        },
    }
}
