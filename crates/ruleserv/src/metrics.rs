//! Server metric handles, pre-resolved at startup.
//!
//! Families (all registered in DESIGN.md §11's canonical table):
//! `server_connections_total`, `server_requests_total{op=…}`,
//! `server_request_nanos{op=…}`, `server_busy_total`,
//! `server_bytes_total{dir=…}`, `server_events_dropped_total`, and
//! `server_queue_depth`. A disabled registry hands out disabled
//! handles, so an unmetered server pays one branch per site.

use crate::proto::OP_NAMES;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use telemetry::{Counter, Histogram, Registry};

/// Per-op request counter + latency histogram.
struct OpMetrics {
    requests: Counter,
    nanos: Histogram,
}

/// The server's metric bundle.
pub(crate) struct ServerMetrics {
    /// Connections accepted (`server_connections_total`).
    pub(crate) connections: Counter,
    /// Requests bounced with `Busy` (`server_busy_total`).
    pub(crate) busy: Counter,
    /// Frame bytes received (`server_bytes_total{dir="in"}`).
    pub(crate) bytes_in: Counter,
    /// Frame bytes sent (`server_bytes_total{dir="out"}`).
    pub(crate) bytes_out: Counter,
    /// Subscription events dropped on full reply queues
    /// (`server_events_dropped_total`).
    pub(crate) events_dropped: Counter,
    /// Engine-queue depth observed at each enqueue
    /// (`server_queue_depth`).
    pub(crate) queue_depth: Histogram,
    /// Keyed by the labels in [`OP_NAMES`].
    per_op: HashMap<&'static str, OpMetrics>,
}

impl ServerMetrics {
    pub(crate) fn from_registry(registry: &Arc<Registry>) -> ServerMetrics {
        let per_op = OP_NAMES
            .iter()
            .map(|&op| {
                (
                    op,
                    OpMetrics {
                        requests: registry
                            .counter(&format!("server_requests_total{{op=\"{op}\"}}")),
                        nanos: registry.histogram(&format!("server_request_nanos{{op=\"{op}\"}}")),
                    },
                )
            })
            .collect();
        ServerMetrics {
            connections: registry.counter("server_connections_total"),
            busy: registry.counter("server_busy_total"),
            bytes_in: registry.counter("server_bytes_total{dir=\"in\"}"),
            bytes_out: registry.counter("server_bytes_total{dir=\"out\"}"),
            events_dropped: registry.counter("server_events_dropped_total"),
            queue_depth: registry.histogram("server_queue_depth"),
            per_op,
        }
    }

    /// One request served: count it and record queue-to-reply latency.
    pub(crate) fn record_op(&self, op: &str, elapsed: Duration) {
        if let Some(m) = self.per_op.get(op) {
            m.requests.inc();
            m.nanos.record(elapsed.as_nanos() as u64);
        }
    }
}
