//! The daemon: one engine thread, one session per connection.
//!
//! ## Threading model
//!
//! ```text
//!                 ┌───────────────┐
//!   conn A ──────▶│ reader thread │──┐ try_send          ┌───────────────┐
//!           ◀─────│ writer thread │◀─┼──── reply slots ──│ engine thread │
//!                 └───────────────┘  │  bounded mpsc     │ (owns the     │
//!                 ┌───────────────┐  ├──────────────────▶│  durable      │
//!   conn B ──────▶│ reader thread │──┘                   │  engine +     │
//!           ◀─────│ writer thread │◀───────── events ────│  subscribers) │
//!                 └───────────────┘                      └───────────────┘
//! ```
//!
//! * **One engine thread** owns the [`DurableRuleEngine`]; every
//!   mutation flows through a single bounded `mpsc` queue, so WAL
//!   ordering stays exactly as serial as the in-process engine.
//! * **One reader thread per connection** parses frames and forwards
//!   them to the engine queue with `try_send`: a full queue produces an
//!   immediate [`Reply::Busy`] instead of unbounded buffering — that is
//!   the backpressure contract.
//! * **One writer thread per connection** owns the socket's write half.
//!   The reader allocates a *reply slot* (a oneshot channel) per
//!   request and pushes the receiving end onto the writer's bounded
//!   slot queue **in request order**; whoever fulfils the slot (the
//!   engine for accepted requests, the reader itself for `Busy` and
//!   `Pong`), the writer emits replies strictly in that order. Replies
//!   can never be lost or reordered by construction. The slot queue's
//!   bound caps per-connection pipelining: a client that keeps sending
//!   past it blocks in TCP, which is backpressure too.
//! * **Subscriptions** ride the same slot queues: the engine pushes
//!   pre-fulfilled slots carrying [`Reply::Event`] frames. Events to a
//!   connection whose queue is full are *dropped and counted*; the next
//!   event that fits is preceded by a [`Reply::Lagged`] frame carrying
//!   the drop count — a slow subscriber can stall its own stream, never
//!   the engine.

use crate::metrics::ServerMetrics;
use crate::proto::{
    op_name, read_frame, record_op_name, Event, EventBinding, FireSummary, Reply, Request,
};
use durable::{DurableRuleEngine, Record};
use std::collections::HashMap;
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::wake_addr;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Engine-queue bound: requests beyond this many in flight get
    /// [`Reply::Busy`].
    pub queue_cap: usize,
    /// Per-connection reply-slot bound — the maximum pipelining depth;
    /// past it the reader stops reading and TCP pushes back.
    pub pipeline_cap: usize,
    /// Session read poll: how often an idle reader checks the stop
    /// flag (also the shutdown latency ceiling for idle connections).
    pub read_timeout: Duration,
    /// Write timeout per reply frame; a client that stops draining for
    /// this long gets its connection dropped.
    pub write_timeout: Duration,
    /// Crash harness: after this many applied operations the process
    /// aborts *after* the WAL append but *before* the reply is sent —
    /// the exact window recovery tests need. `None` in production.
    pub crash_after: Option<u64>,
    /// Requests whose queue-to-reply latency meets this threshold are
    /// captured in the profiler's slow-op ring (with their trace id
    /// and cost breakdown). Ignored unless the engine carries an
    /// enabled [`telemetry::Profiler`]; `None` leaves the profiler's
    /// own threshold untouched.
    pub slow_op_threshold: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            queue_cap: 1024,
            pipeline_cap: 4096,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(10),
            crash_after: None,
            slow_op_threshold: None,
        }
    }
}

/// One reply slot: the writer emits whatever arrives here, in the
/// order the receiving ends were queued.
type Slot = mpsc::SyncSender<Reply>;
/// The writer-side queue of slots to drain, in reply order.
type SlotQueue = SyncSender<Receiver<Reply>>;

/// A request crossing from a session reader into the engine thread.
/// `trace` is the client's optional trace id, stamped onto the
/// engine-side `server_request` span and the slow-op log.
enum EngineMsg {
    Apply {
        record: Record,
        trace: Option<u64>,
        slot: Slot,
        enqueued: Instant,
    },
    Subscribe {
        conn: u64,
        pipe: SlotQueue,
        trace: Option<u64>,
        slot: Slot,
        enqueued: Instant,
    },
    Unsubscribe {
        conn: u64,
        trace: Option<u64>,
        slot: Slot,
        enqueued: Instant,
    },
    Health {
        trace: Option<u64>,
        slot: Slot,
        enqueued: Instant,
    },
    Sync {
        trace: Option<u64>,
        slot: Slot,
        enqueued: Instant,
    },
    /// Session ended: forget its subscription.
    Hangup { conn: u64 },
}

/// A running rule server.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<DurableRuleEngine>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHandle {
    /// The bound address (useful with a `:0` ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, lets every session observe
    /// the stop flag, drains the engine queue, and hands the durable
    /// engine back (`None` only if the engine thread panicked).
    pub fn shutdown(mut self) -> Option<DurableRuleEngine> {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept; wildcard binds dial loopback.
        let _ = TcpStream::connect(wake_addr(self.addr));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.engine.take().and_then(|t| t.join().ok())
    }
}

/// Binds `bind` (e.g. `"127.0.0.1:7878"`, or port `0` for ephemeral)
/// and serves the wire protocol over `engine` until
/// [`ServerHandle::shutdown`]. Metrics are recorded into the registry
/// the engine was opened with (disabled registry = one branch per
/// site).
pub fn serve(
    bind: &str,
    engine: DurableRuleEngine,
    opts: ServerOptions,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    if let Some(threshold) = opts.slow_op_threshold {
        engine
            .profiler()
            .set_slow_threshold_nanos(threshold.as_nanos() as u64);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(ServerMetrics::from_registry(engine.metrics()));
    let depth = Arc::new(AtomicU64::new(0));

    let (engine_tx, engine_rx) = mpsc::sync_channel::<EngineMsg>(opts.queue_cap.max(1));
    let engine_thread = {
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        let depth = Arc::clone(&depth);
        std::thread::Builder::new()
            .name("ruleserv-engine".into())
            .spawn(move || engine_loop(engine, engine_rx, &stop, &metrics, &depth, &opts))?
    };

    let accept_thread = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("ruleserv-accept".into())
            .spawn(move || {
                let mut sessions: Vec<JoinHandle<()>> = Vec::new();
                let mut next_conn: u64 = 0;
                for conn in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    metrics.connections.inc();
                    let id = next_conn;
                    next_conn += 1;
                    if let Ok(handle) = spawn_session(
                        id,
                        conn,
                        engine_tx.clone(),
                        Arc::clone(&stop),
                        Arc::clone(&metrics),
                        Arc::clone(&depth),
                        opts,
                    ) {
                        sessions.push(handle);
                    }
                    // Reap finished sessions so a long-lived daemon
                    // does not accumulate join handles.
                    sessions.retain(|h| !h.is_finished());
                }
                // `engine_tx` drops here; sessions each hold a clone
                // until they exit (bounded by the read poll).
                for h in sessions {
                    let _ = h.join();
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept_thread),
        engine: Some(engine_thread),
    })
}

/// Spawns the reader (returned handle) and writer threads for one
/// connection. The reader joins the writer before exiting, so joining
/// the reader tears down the whole session.
fn spawn_session(
    conn_id: u64,
    conn: TcpStream,
    engine_tx: SyncSender<EngineMsg>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    depth: Arc<AtomicU64>,
    opts: ServerOptions,
) -> io::Result<JoinHandle<()>> {
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(opts.read_timeout)).ok();
    conn.set_write_timeout(Some(opts.write_timeout)).ok();
    let write_half = conn.try_clone()?;

    let (pipe_tx, pipe_rx) = mpsc::sync_channel::<Receiver<Reply>>(opts.pipeline_cap.max(1));
    let writer = {
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name(format!("ruleserv-w{conn_id}"))
            .spawn(move || writer_loop(write_half, pipe_rx, &metrics))?
    };

    std::thread::Builder::new()
        .name(format!("ruleserv-r{conn_id}"))
        .spawn(move || {
            reader_loop(conn_id, conn, &engine_tx, &pipe_tx, &stop, &metrics, &depth);
            // Session over: release the subscription (best effort; a
            // shut-down engine has already dropped everything).
            let _ = engine_tx.send(EngineMsg::Hangup { conn: conn_id });
            drop(pipe_tx);
            let _ = writer.join();
        })
}

/// A `Read` adapter that turns read-timeout ticks into stop-flag polls:
/// idle waits keep blocking until bytes arrive or the server stops
/// (then: clean EOF). Mid-frame timeouts keep the partial-frame state
/// intact because `read` simply retries.
struct PollRead<'a> {
    inner: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl Read for PollRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.stop.load(Ordering::Relaxed) {
                        return Ok(0);
                    }
                }
                other => return other,
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn reader_loop(
    conn_id: u64,
    conn: TcpStream,
    engine_tx: &SyncSender<EngineMsg>,
    pipe_tx: &SlotQueue,
    stop: &AtomicBool,
    metrics: &ServerMetrics,
    depth: &AtomicU64,
) {
    let mut stream = PollRead { inner: &conn, stop };
    loop {
        // Checked per frame, not just on idle timeouts: a client that
        // never stops sending must not be able to hold off shutdown.
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let (opcode, payload) = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean close, torn frame, or corruption all end the
            // session; there is no way to resynchronise a byte stream.
            Ok(None) | Err(_) => return,
        };
        metrics.bytes_in.add(8 + 1 + payload.len() as u64);
        let (request, trace) = match Request::decode_traced(opcode, &payload) {
            Ok(r) => r,
            Err(_) => return,
        };
        let op = op_name(&request);
        let enqueued = Instant::now();

        // Reply slot first, *then* the engine handoff: the slot queue
        // is what fixes reply order, so it must observe requests in
        // arrival order before anyone can fulfil them.
        // Oneshot: exactly one reply ever crosses a slot, so the
        // bound of 1 means the fulfilling side never blocks.
        let (slot, slot_rx) = mpsc::sync_channel::<Reply>(1);
        if pipe_tx.send(slot_rx).is_err() {
            return; // writer died (socket error)
        }

        let msg = match request {
            Request::Ping => {
                // Answered here: liveness of the session must not
                // depend on engine-queue headroom.
                metrics.record_op(op, enqueued.elapsed());
                let _ = slot.send(Reply::Pong);
                continue;
            }
            Request::Apply(record) => EngineMsg::Apply {
                record,
                trace,
                slot,
                enqueued,
            },
            Request::Subscribe => EngineMsg::Subscribe {
                conn: conn_id,
                pipe: pipe_tx.clone(),
                trace,
                slot,
                enqueued,
            },
            Request::Unsubscribe => EngineMsg::Unsubscribe {
                conn: conn_id,
                trace,
                slot,
                enqueued,
            },
            Request::Health => EngineMsg::Health {
                trace,
                slot,
                enqueued,
            },
            Request::Sync => EngineMsg::Sync {
                trace,
                slot,
                enqueued,
            },
        };
        // Count the message before handing it over: the engine thread
        // decrements after processing, and may get there before a
        // post-send increment would run (which would wrap below zero).
        let d = depth.fetch_add(1, Ordering::Relaxed) + 1;
        match engine_tx.try_send(msg) {
            Ok(()) => {
                metrics.queue_depth.record(d);
            }
            Err(TrySendError::Full(msg)) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                // The backpressure contract: an explicit Busy now, not
                // an unbounded buffer. The slot is already queued, so
                // the reply still lands in request order.
                metrics.busy.inc();
                let _ = slot_of(msg).send(Reply::Busy);
            }
            Err(TrySendError::Disconnected(_)) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Extracts the reply slot from a bounced message.
fn slot_of(msg: EngineMsg) -> Slot {
    match msg {
        EngineMsg::Apply { slot, .. }
        | EngineMsg::Subscribe { slot, .. }
        | EngineMsg::Unsubscribe { slot, .. }
        | EngineMsg::Health { slot, .. }
        | EngineMsg::Sync { slot, .. } => slot,
        // Hangup is never try_sent with backpressure handling.
        EngineMsg::Hangup { .. } => mpsc::sync_channel(1).0,
    }
}

/// The writer: drain slots in order, batch flushes. Exits when every
/// slot producer (reader + engine subscription) is gone or the socket
/// fails.
fn writer_loop(conn: TcpStream, pipe_rx: Receiver<Receiver<Reply>>, metrics: &ServerMetrics) {
    let mut out = BufWriter::with_capacity(64 * 1024, conn);
    loop {
        // Prefer the non-blocking path so consecutive ready replies
        // share one flush; block (after flushing) only when idle.
        let slot_rx = match pipe_rx.try_recv() {
            Ok(rx) => rx,
            Err(mpsc::TryRecvError::Empty) => {
                if out.flush().is_err() {
                    return;
                }
                match pipe_rx.recv() {
                    Ok(rx) => rx,
                    Err(_) => return,
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                let _ = out.flush();
                return;
            }
        };
        // A dropped sender (engine shut down before fulfilling) skips
        // the slot; the connection is going down anyway.
        let Ok(reply) = slot_rx.recv() else { continue };
        let (opcode, payload) = reply.encode();
        metrics.bytes_out.add(8 + 1 + payload.len() as u64);
        if crate::proto::write_frame(&mut out, opcode, &payload).is_err() {
            return;
        }
    }
}

/// One subscriber: where to push events, and how many were dropped
/// since the last one that fit.
struct Subscriber {
    pipe: SlotQueue,
    lagged: u64,
}

impl Subscriber {
    /// Best-effort push of one pre-fulfilled slot.
    fn push(&mut self, reply: Reply, metrics: &ServerMetrics) {
        if self.lagged > 0 {
            let lag = Reply::Lagged(self.lagged);
            if try_push(&self.pipe, lag) {
                self.lagged = 0;
            } else {
                metrics.events_dropped.inc();
                self.lagged += 1; // the event below is dropped too
                return;
            }
        }
        if !try_push(&self.pipe, reply) {
            metrics.events_dropped.inc();
            self.lagged += 1;
        }
    }
}

/// Queues an already-fulfilled slot; `false` when the pipe is full or
/// the connection is gone.
fn try_push(pipe: &SlotQueue, reply: Reply) -> bool {
    let (tx, rx) = mpsc::sync_channel(1);
    let _ = tx.send(reply);
    pipe.try_send(rx).is_ok()
}

fn engine_loop(
    mut engine: DurableRuleEngine,
    rx: Receiver<EngineMsg>,
    stop: &AtomicBool,
    metrics: &ServerMetrics,
    depth: &AtomicU64,
    opts: &ServerOptions,
) -> DurableRuleEngine {
    let mut subscribers: HashMap<u64, Subscriber> = HashMap::new();
    let mut applied: u64 = 0;
    loop {
        // Checked every iteration (not only on idle timeouts) so a
        // saturating workload cannot postpone shutdown indefinitely.
        if stop.load(Ordering::Relaxed) {
            // Drain what the readers managed to enqueue before they
            // saw the flag, then retire.
            while let Ok(msg) = rx.try_recv() {
                handle_msg(
                    msg,
                    &mut engine,
                    &mut subscribers,
                    metrics,
                    depth,
                    &mut applied,
                    opts,
                );
            }
            break;
        }
        let msg = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(msg) => msg,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        handle_msg(
            msg,
            &mut engine,
            &mut subscribers,
            metrics,
            depth,
            &mut applied,
            opts,
        );
    }
    engine
}

fn handle_msg(
    msg: EngineMsg,
    engine: &mut DurableRuleEngine,
    subscribers: &mut HashMap<u64, Subscriber>,
    metrics: &ServerMetrics,
    depth: &AtomicU64,
    applied: &mut u64,
    opts: &ServerOptions,
) {
    if let EngineMsg::Hangup { conn } = msg {
        subscribers.remove(&conn);
        return;
    }
    depth.fetch_sub(1, Ordering::Relaxed);
    let (op, trace) = match &msg {
        EngineMsg::Apply { record, trace, .. } => (record_op_name(record), *trace),
        EngineMsg::Subscribe { trace, .. } => ("subscribe", *trace),
        EngineMsg::Unsubscribe { trace, .. } => ("unsubscribe", *trace),
        EngineMsg::Health { trace, .. } => ("health", *trace),
        EngineMsg::Sync { trace, .. } => ("sync", *trace),
        // Handled above; kept for exhaustiveness.
        EngineMsg::Hangup { .. } => ("hangup", None),
    };
    // The engine-side request span: every op the engine thread serves
    // opens one, carrying the client's trace id when the frame had the
    // suffix — the wire-to-span round trip.
    let tracer = engine.tracer().clone();
    let profiler = engine.profiler().clone();
    let _span = tracer.span_with("server_request", || {
        let mut args = vec![("op", op.to_string())];
        if let Some(id) = trace {
            args.push(("trace", format!("{id:#x}")));
        }
        args
    });
    let before = profiler.source_snapshot();
    let finish = |enqueued: Instant| {
        let elapsed = enqueued.elapsed();
        metrics.record_op(op, elapsed);
        if profiler.is_enabled() {
            let cost = profiler.source_snapshot().delta_since(&before);
            profiler.record_request(op, trace, elapsed.as_nanos() as u64, cost);
        }
    };
    match msg {
        EngineMsg::Apply {
            record,
            slot,
            enqueued,
            ..
        } => {
            let seq = engine.next_seq();
            let (reply, events) = apply_record(engine, record, seq);
            *applied += 1;
            if opts.crash_after == Some(*applied) {
                // The recovery-test window: the WAL append (and under
                // SyncPolicy::Always the fsync) has happened, the
                // reply has not. A real crash here must replay the op.
                std::process::abort();
            }
            if !events.is_empty() && !subscribers.is_empty() {
                for event in events {
                    let frame = Reply::Event(event);
                    for sub in subscribers.values_mut() {
                        sub.push(frame.clone(), metrics);
                    }
                }
            }
            finish(enqueued);
            let _ = slot.send(reply);
        }
        EngineMsg::Subscribe {
            conn,
            pipe,
            slot,
            enqueued,
            ..
        } => {
            subscribers.insert(conn, Subscriber { pipe, lagged: 0 });
            finish(enqueued);
            let _ = slot.send(Reply::Unit);
        }
        EngineMsg::Unsubscribe {
            conn,
            slot,
            enqueued,
            ..
        } => {
            subscribers.remove(&conn);
            finish(enqueued);
            let _ = slot.send(Reply::Unit);
        }
        EngineMsg::Health { slot, enqueued, .. } => {
            finish(enqueued);
            let _ = slot.send(Reply::Health(engine.health_text()));
        }
        EngineMsg::Sync { slot, enqueued, .. } => {
            let reply = match engine.sync() {
                Ok(()) => Reply::Unit,
                Err(e) => Reply::Err(e.to_string()),
            };
            finish(enqueued);
            let _ = slot.send(reply);
        }
        EngineMsg::Hangup { conn } => {
            subscribers.remove(&conn);
        }
    }
}

/// Executes one logged mutation and shapes its reply, plus the
/// subscription [`Event`]s its firings push (one per firing, carrying
/// the bound tuples of join-rule firings).
fn apply_record(engine: &mut DurableRuleEngine, record: Record, seq: u64) -> (Reply, Vec<Event>) {
    let fire = |report: rules::FireReport| {
        let events = report
            .firings
            .iter()
            .map(|f| Event {
                seq,
                rule_id: f.rule.0,
                rule: f.name.clone(),
                bindings: f
                    .bindings
                    .iter()
                    .map(|b| EventBinding {
                        relation: b.relation.clone(),
                        tuple_id: b.id.0,
                        values: b.tuple.values().to_vec(),
                    })
                    .collect(),
            })
            .collect();
        let reply = Reply::Fire(FireSummary {
            seq,
            ops_applied: report.ops_applied as u64,
            fired: report
                .fired
                .into_iter()
                .map(|(id, name)| (id.0, name))
                .collect(),
        });
        (reply, events)
    };
    let unit = |r: Result<(), String>| match r {
        Ok(()) => (Reply::Unit, Vec::new()),
        Err(e) => (Reply::Err(e), Vec::new()),
    };
    match record {
        Record::CreateRelation { schema } => {
            unit(engine.create_relation(schema).map_err(|e| e.to_string()))
        }
        Record::DropRelation { name } => unit(
            engine
                .drop_relation(&name)
                .map(drop)
                .map_err(|e| e.to_string()),
        ),
        Record::AddRule { spec } => match engine.add_rule(spec) {
            Ok(id) => (Reply::RuleId(id.0), Vec::new()),
            Err(e) => (Reply::Err(e.to_string()), Vec::new()),
        },
        Record::RemoveRule { id } => unit(
            engine
                .remove_rule(rules::RuleId(id))
                .map(drop)
                .map_err(|e| e.to_string()),
        ),
        Record::Insert { relation, values } => match engine.insert(&relation, values) {
            Ok(report) => fire(report),
            Err(e) => (Reply::Err(e.to_string()), Vec::new()),
        },
        Record::Update {
            relation,
            id,
            values,
        } => match engine.update(&relation, relation::TupleId(id), values) {
            Ok(report) => fire(report),
            Err(e) => (Reply::Err(e.to_string()), Vec::new()),
        },
        Record::Delete { relation, id } => match engine.delete(&relation, relation::TupleId(id)) {
            Ok(report) => fire(report),
            Err(e) => (Reply::Err(e.to_string()), Vec::new()),
        },
        Record::InsertBatch { relation, rows } => match engine.insert_batch(&relation, rows) {
            Ok(report) => fire(report),
            Err(e) => (Reply::Err(e.to_string()), Vec::new()),
        },
    }
}
