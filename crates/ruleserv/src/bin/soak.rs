//! Concurrent-client soak harness for the rule server.
//!
//! ```text
//! soak --connections 32 --requests 2000 --out BENCH_server.json
//! ```
//!
//! Starts an in-process server over a fresh durable home (or targets a
//! running daemon with `--addr`), then drives N connections of mixed
//! pipelined traffic. Each connection owns one relation and one rule so
//! traffic exercises create/insert/update/delete and rule firings
//! without cross-connection write conflicts.
//!
//! **Correctness, not just throughput.** Every request is logged with
//! the reply kind it must produce; replies are read back in order and
//! matched one-to-one. A kind mismatch counts as *reordered* and an
//! unanswered request at drain counts as *lost* — the process exits
//! non-zero if either is nonzero. `Busy` is a valid outcome for any
//! engine-bound request (bounded-queue backpressure), counted
//! separately.
//!
//! The report is hand-rolled JSON (`schema: bench/server-v2`) with
//! total throughput, per-request latency percentiles, and a per-op
//! latency breakdown (p50/p99 per opcode, estimated from shared
//! power-of-two [`telemetry::Histogram`]s — the same estimator the
//! server's `/metrics` quantile lines use), written to `--out` for
//! the benchmark ledger.

use durable::{ActionRegistry, ActionSpec, DurableRuleEngine, Options, RuleSpec, SyncPolicy};
use predicate::FunctionRegistry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{AttrType, Schema, Value};
use rules::EventMask;
use ruleserv::{serve, Client, Reply, Request, ServerOptions};
use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::{quantile, Histogram, Registry};

struct Config {
    addr: Option<String>,
    connections: usize,
    requests: usize,
    pipeline: usize,
    seed: u64,
    out: Option<String>,
    sync_every: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: soak [--addr HOST:PORT] [--connections N] [--requests N] [--pipeline N]\n\
         \x20           [--seed N] [--sync-every N] [--out PATH]\n\
         \n\
         \x20 --addr HOST:PORT  target a running daemon (default: in-process server)\n\
         \x20 --connections N   concurrent client connections (default 32)\n\
         \x20 --requests N      requests per connection (default 2000)\n\
         \x20 --pipeline N      max requests in flight per connection (default 64)\n\
         \x20 --seed N          RNG seed for the traffic mix (default 42)\n\
         \x20 --sync-every N    in-process server group-commit window (default 64)\n\
         \x20 --out PATH        write the JSON report here (default: stdout only)"
    );
    std::process::exit(2)
}

fn parse_args() -> Config {
    let mut cfg = Config {
        addr: None,
        connections: 32,
        requests: 2000,
        pipeline: 64,
        seed: 42,
        out: None,
        sync_every: 64,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(v) = args.next() else { usage() };
        match flag.as_str() {
            "--addr" => cfg.addr = Some(v),
            "--connections" => cfg.connections = v.parse().unwrap_or_else(|_| usage()),
            "--requests" => cfg.requests = v.parse().unwrap_or_else(|_| usage()),
            "--pipeline" => cfg.pipeline = v.parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = v.parse().unwrap_or_else(|_| usage()),
            "--sync-every" => cfg.sync_every = v.parse().unwrap_or_else(|_| usage()),
            "--out" => cfg.out = Some(v),
            _ => usage(),
        }
    }
    if cfg.connections == 0 || cfg.requests == 0 || cfg.pipeline == 0 {
        usage()
    }
    cfg
}

/// What one in-flight request owes us.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Expect {
    Pong,
    Unit,
    Fire,
    Health,
}

impl Expect {
    /// Does `reply` settle this expectation? `Busy` and `Err` are
    /// legitimate in-order outcomes for any engine-bound request
    /// (backpressure and domain rejection respectively), never for a
    /// session-local `Ping`.
    fn matches(self, reply: &Reply) -> bool {
        match (self, reply) {
            (Expect::Pong, Reply::Pong) => true,
            (Expect::Unit, Reply::Unit) => true,
            (Expect::Fire, Reply::Fire(_)) => true,
            (Expect::Health, Reply::Health(_)) => true,
            (Expect::Pong, _) => false,
            (_, Reply::Busy | Reply::Err(_)) => true,
            _ => false,
        }
    }
}

/// Per-connection soak outcome.
struct ConnStats {
    replies: u64,
    busy: u64,
    errors: u64,
    fired: u64,
    lost: u64,
    reordered: u64,
    /// Nanoseconds from send to reply, one sample per settled request.
    latencies: Vec<u64>,
}

/// The op labels soak traffic is generated under, fixed order for the
/// report.
const SOAK_OPS: &[&str] = &["insert", "update", "delete", "ping", "health", "sync"];

fn drive_connection(
    id: usize,
    addr: std::net::SocketAddr,
    cfg_requests: usize,
    cfg_pipeline: usize,
    seed: u64,
    registry: Arc<Registry>,
) -> Result<ConnStats, ruleserv::ClientError> {
    let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37_79b9));
    let mut client = Client::connect(addr)?;
    let relation = format!("soak_c{id}");
    // Per-op latency histograms, shared (atomic buckets) across every
    // connection through the soak registry.
    let per_op: HashMap<&'static str, Histogram> = SOAK_OPS
        .iter()
        .map(|&op| {
            (
                op,
                registry.histogram(&format!("soak_latency_nanos{{op=\"{op}\"}}")),
            )
        })
        .collect();

    // Setup outside the measured window: a private relation plus a
    // rule over it so roughly half the inserts fire.
    client.create_relation(
        Schema::builder(&relation)
            .attr("k", AttrType::Int)
            .attr("v", AttrType::Int)
            .build(),
    )?;
    client.add_rule(RuleSpec {
        name: format!("{relation}_low_k"),
        condition: format!("{relation}.k < 50"),
        mask: EventMask::INSERT_UPDATE,
        priority: 0,
        action: ActionSpec::Log(format!("{relation} low k")),
    })?;

    let mut stats = ConnStats {
        replies: 0,
        busy: 0,
        errors: 0,
        fired: 0,
        lost: 0,
        reordered: 0,
        latencies: Vec::with_capacity(cfg_requests),
    };
    // FIFO of (expectation, op label, send instant); the reply stream
    // must settle these strictly in order.
    let mut pending: std::collections::VecDeque<(Expect, &'static str, Instant)> =
        std::collections::VecDeque::new();
    let mut inserted: u64 = 0;

    let settle =
        |reply: &Reply, expect: Expect, op: &'static str, sent: Instant, stats: &mut ConnStats| {
            let nanos = sent.elapsed().as_nanos() as u64;
            stats.replies += 1;
            stats.latencies.push(nanos);
            if let Some(h) = per_op.get(op) {
                h.record(nanos);
            }
            match reply {
                Reply::Busy => stats.busy += 1,
                Reply::Err(_) => stats.errors += 1,
                Reply::Fire(s) => stats.fired += s.fired.len() as u64,
                _ => {}
            }
            if !expect.matches(reply) {
                stats.reordered += 1;
            }
        };

    for n in 0..cfg_requests {
        // Keep at most `pipeline` requests outstanding.
        while let Some(&(expect, op, sent)) = pending.front() {
            if pending.len() < cfg_pipeline {
                break;
            }
            pending.pop_front();
            match client.recv_reply() {
                Ok(reply) => settle(&reply, expect, op, sent, &mut stats),
                Err(e) => {
                    stats.lost += pending.len() as u64 + 1;
                    return fail_conn(stats, e);
                }
            }
        }

        let roll: u32 = rng.gen_range(0..100);
        let (request, op) = if roll < 60 || inserted == 0 {
            inserted += 1;
            (
                Request::Apply(durable::Record::Insert {
                    relation: relation.clone(),
                    values: vec![Value::Int((n as i64) % 100), Value::Int(n as i64)],
                }),
                "insert",
            )
        } else if roll < 75 {
            // Update a random prior id; already-deleted ids yield a
            // clean `Err` reply, which is part of the point.
            (
                Request::Apply(durable::Record::Update {
                    relation: relation.clone(),
                    id: rng.gen_range(0..inserted) as u32,
                    values: vec![Value::Int(rng.gen_range(0..100)), Value::Int(-1)],
                }),
                "update",
            )
        } else if roll < 85 {
            (
                Request::Apply(durable::Record::Delete {
                    relation: relation.clone(),
                    id: rng.gen_range(0..inserted) as u32,
                }),
                "delete",
            )
        } else if roll < 93 {
            (Request::Ping, "ping")
        } else if roll < 97 {
            (Request::Health, "health")
        } else {
            (Request::Sync, "sync")
        };
        let expect = match &request {
            Request::Ping => Expect::Pong,
            Request::Health => Expect::Health,
            Request::Sync => Expect::Unit,
            _ => Expect::Fire,
        };
        pending.push_back((expect, op, Instant::now()));
        if let Err(e) = client.send(&request) {
            stats.lost += pending.len() as u64;
            return fail_conn(stats, e);
        }
    }

    // Drain: every outstanding request must produce exactly one reply.
    while let Some((expect, op, sent)) = pending.pop_front() {
        match client.recv_reply() {
            Ok(reply) => settle(&reply, expect, op, sent, &mut stats),
            Err(e) => {
                stats.lost += pending.len() as u64 + 1;
                return fail_conn(stats, e);
            }
        }
    }
    Ok(stats)
}

fn fail_conn(
    stats: ConnStats,
    e: ruleserv::ClientError,
) -> Result<ConnStats, ruleserv::ClientError> {
    eprintln!("soak: connection failed mid-run: {e}");
    Ok(stats)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    if let Err(e) = run(parse_args()) {
        eprintln!("soak: {e}");
        std::process::exit(1);
    }
}

fn run(cfg: Config) -> Result<(), Box<dyn std::error::Error>> {
    // In-process server unless --addr points at a running daemon.
    let mut tempdir = None;
    let (addr, server) = match &cfg.addr {
        Some(addr) => (addr.parse()?, None),
        None => {
            let dir = std::env::temp_dir().join(format!(
                "ruleserv-soak-{}-{}",
                std::process::id(),
                cfg.seed
            ));
            if dir.exists() {
                std::fs::remove_dir_all(&dir)?;
            }
            let engine = DurableRuleEngine::open_with_metrics(
                &dir,
                FunctionRegistry::default(),
                ActionRegistry::new(),
                Options {
                    sync: SyncPolicy::EveryN(cfg.sync_every),
                    snapshot_every: None,
                },
                Arc::new(Registry::new()),
            )?;
            tempdir = Some(dir);
            let server = serve("127.0.0.1:0", engine, ServerOptions::default())?;
            (server.addr(), Some(server))
        }
    };

    eprintln!(
        "soak: {} connections x {} requests (pipeline {}) against {addr}",
        cfg.connections, cfg.requests, cfg.pipeline
    );

    // Client-side per-op latency histograms; every connection records
    // into the same atomic buckets.
    let soak_registry = Arc::new(Registry::new());

    let started = Instant::now();
    let mut handles = Vec::new();
    for id in 0..cfg.connections {
        let requests = cfg.requests;
        let pipeline = cfg.pipeline;
        let seed = cfg.seed;
        let registry = Arc::clone(&soak_registry);
        handles.push(
            std::thread::Builder::new()
                .name(format!("soak-{id}"))
                .spawn(move || drive_connection(id, addr, requests, pipeline, seed, registry))?,
        );
    }

    let mut replies = 0u64;
    let mut busy = 0u64;
    let mut errors = 0u64;
    let mut fired = 0u64;
    let mut lost = 0u64;
    let mut reordered = 0u64;
    let mut failed_conns = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(Ok(stats)) => {
                replies += stats.replies;
                busy += stats.busy;
                errors += stats.errors;
                fired += stats.fired;
                lost += stats.lost;
                reordered += stats.reordered;
                latencies.extend(stats.latencies);
            }
            Ok(Err(e)) => {
                eprintln!("soak: connection error: {e}");
                failed_conns += 1;
            }
            Err(_) => {
                eprintln!("soak: connection thread panicked");
                failed_conns += 1;
            }
        }
    }
    let elapsed = started.elapsed();

    if let Some(server) = server {
        if let Some(mut engine) = server.shutdown() {
            engine.sync()?;
        }
    }
    if let Some(dir) = tempdir {
        let _ = std::fs::remove_dir_all(dir);
    }

    latencies.sort_unstable();
    let total_sent = (cfg.connections * cfg.requests) as u64;
    let throughput = replies as f64 / elapsed.as_secs_f64().max(1e-9);
    let per_op = per_op_rows(&soak_registry);
    let report = render_report(
        &cfg,
        &per_op,
        ReportNumbers {
            elapsed,
            total_sent,
            replies,
            busy,
            errors,
            fired,
            lost,
            reordered,
            failed_conns,
            throughput,
            p50: percentile(&latencies, 0.50),
            p95: percentile(&latencies, 0.95),
            p99: percentile(&latencies, 0.99),
            max: latencies.last().copied().unwrap_or(0),
        },
    );

    println!("{report}");
    if let Some(path) = &cfg.out {
        let mut f = std::fs::File::create(path)?;
        f.write_all(report.as_bytes())?;
        f.write_all(b"\n")?;
        eprintln!("soak: wrote {path}");
    }

    if lost > 0 || reordered > 0 || failed_conns > 0 {
        eprintln!(
            "soak: FAILED — lost={lost} reordered={reordered} failed_connections={failed_conns}"
        );
        std::process::exit(1);
    }
    eprintln!(
        "soak: OK — {replies} replies in {:.2}s ({:.0} req/s), 0 lost, 0 reordered",
        elapsed.as_secs_f64(),
        throughput
    );
    Ok(())
}

struct ReportNumbers {
    elapsed: Duration,
    total_sent: u64,
    replies: u64,
    busy: u64,
    errors: u64,
    fired: u64,
    lost: u64,
    reordered: u64,
    failed_conns: u64,
    throughput: f64,
    p50: u64,
    p95: u64,
    p99: u64,
    max: u64,
}

/// One per-op row of the report: op label, sample count, and
/// histogram-estimated quantiles.
struct OpRow {
    op: String,
    count: u64,
    p50: u64,
    p99: u64,
}

/// Pulls the shared per-op histograms out of the soak registry, in
/// [`SOAK_OPS`] order (ops with no samples are skipped).
fn per_op_rows(registry: &Registry) -> Vec<OpRow> {
    let snapshots = registry.histogram_snapshots();
    SOAK_OPS
        .iter()
        .filter_map(|&op| {
            let name = format!("soak_latency_nanos{{op=\"{op}\"}}");
            snapshots
                .iter()
                .find(|(n, count, _, _)| *n == name && *count > 0)
                .map(|(_, count, _, buckets)| OpRow {
                    op: op.to_string(),
                    count: *count,
                    p50: quantile(buckets, 0.50),
                    p99: quantile(buckets, 0.99),
                })
        })
        .collect()
}

/// Hand-rolled JSON: the workspace is std-only, and the shape is flat
/// enough that a serializer would be overkill.
fn render_report(cfg: &Config, per_op: &[OpRow], n: ReportNumbers) -> String {
    let per_op_json = per_op
        .iter()
        .map(|r| {
            format!(
                "    \"{}\": {{ \"count\": {}, \"p50\": {}, \"p99\": {} }}",
                r.op, r.count, r.p50, r.p99
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"schema\": \"bench/server-v2\",\n  \"connections\": {},\n  \"requests_per_connection\": {},\n  \"pipeline\": {},\n  \"seed\": {},\n  \"elapsed_secs\": {:.4},\n  \"requests_sent\": {},\n  \"replies\": {},\n  \"busy\": {},\n  \"errors\": {},\n  \"rule_firings\": {},\n  \"lost\": {},\n  \"reordered\": {},\n  \"failed_connections\": {},\n  \"throughput_req_per_sec\": {:.1},\n  \"latency_nanos\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }},\n  \"per_op_latency_nanos\": {{\n{}\n  }}\n}}",
        cfg.connections,
        cfg.requests,
        cfg.pipeline,
        cfg.seed,
        n.elapsed.as_secs_f64(),
        n.total_sent,
        n.replies,
        n.busy,
        n.errors,
        n.fired,
        n.lost,
        n.reordered,
        n.failed_conns,
        n.throughput,
        n.p50,
        n.p95,
        n.p99,
        n.max,
        per_op_json,
    )
}
