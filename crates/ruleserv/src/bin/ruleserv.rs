//! The rule server daemon.
//!
//! ```text
//! ruleserv --dir ./ruleserv-data --bind 127.0.0.1:7878 --metrics 127.0.0.1:9184
//! ```
//!
//! Opens (creating or recovering) the durable engine at `--dir`,
//! serves the wire protocol on `--bind`, and optionally exposes the
//! telemetry HTTP endpoints (`/metrics`, `/health`, `/trace`) on
//! `--metrics`. Prints `LISTENING <addr>` on stdout once ready —
//! supervisors and tests parse that line — and runs until stdin
//! reaches EOF (or `--seconds` elapse), then shuts down gracefully.
//!
//! `--crash-after N` is the crash-recovery harness: the process aborts
//! after the Nth applied operation's WAL append, before its reply.

use durable::{ActionRegistry, DurableRuleEngine, Options, SyncPolicy};
use predicate::FunctionRegistry;
use predindex::Advisor;
use ruleserv::{serve, ServerOptions};
use std::io::Read;
use std::sync::Arc;
use telemetry::{AdvisorHook, Profiler, Registry, Tracer, WorkloadStats};

struct Config {
    dir: String,
    bind: String,
    metrics: Option<String>,
    seconds: Option<u64>,
    queue_cap: usize,
    pipeline_cap: usize,
    sync_every: Option<u32>,
    snapshot_every: Option<u64>,
    crash_after: Option<u64>,
    profile: bool,
    slow_ms: Option<u64>,
    advise: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ruleserv [--dir PATH] [--bind ADDR] [--metrics ADDR] [--seconds N]\n\
         \x20               [--queue-cap N] [--pipeline-cap N] [--sync-every N]\n\
         \x20               [--snapshot-every N] [--crash-after N] [--profile] [--slow-ms N]\n\
         \n\
         \x20 --dir PATH        durable home (default ./ruleserv-data)\n\
         \x20 --bind ADDR       wire-protocol listener (default 127.0.0.1:7878; port 0 = ephemeral)\n\
         \x20 --metrics ADDR    also serve the telemetry HTTP exposition here\n\
         \x20 --seconds N       run for N seconds instead of until stdin EOF\n\
         \x20 --queue-cap N     engine queue bound before Busy replies (default 1024)\n\
         \x20 --pipeline-cap N  per-connection outstanding-reply bound (default 4096)\n\
         \x20 --sync-every N    group-commit: fsync every N appends (default: every append)\n\
         \x20 --snapshot-every N  snapshot cadence in logged ops (default 1024)\n\
         \x20 --crash-after N   abort after op N's WAL append, before its reply (crash tests)\n\
         \x20 --profile         attach the cost-attribution profiler (/profile, /top on --metrics)\n\
         \x20 --slow-ms N       capture requests slower than N ms in the slow-op ring (implies --profile)\n\
         \x20 --advise          attach workload accounts + index advisor (/advisor on --metrics)"
    );
    std::process::exit(2)
}

fn parse_args() -> Config {
    let mut cfg = Config {
        dir: "./ruleserv-data".to_string(),
        bind: "127.0.0.1:7878".to_string(),
        metrics: None,
        seconds: None,
        queue_cap: 1024,
        pipeline_cap: 4096,
        sync_every: None,
        snapshot_every: Some(1024),
        crash_after: None,
        profile: false,
        slow_ms: None,
        advise: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| match args.next() {
            Some(v) => v,
            None => usage(),
        };
        match flag.as_str() {
            "--dir" => cfg.dir = value(&mut args),
            "--bind" => cfg.bind = value(&mut args),
            "--metrics" => cfg.metrics = Some(value(&mut args)),
            "--seconds" => cfg.seconds = value(&mut args).parse().ok(),
            "--queue-cap" => cfg.queue_cap = value(&mut args).parse().unwrap_or_else(|_| usage()),
            "--pipeline-cap" => {
                cfg.pipeline_cap = value(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--sync-every" => {
                cfg.sync_every = Some(value(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--snapshot-every" => {
                cfg.snapshot_every = value(&mut args).parse().ok();
            }
            "--crash-after" => {
                cfg.crash_after = Some(value(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--profile" => cfg.profile = true,
            "--advise" => cfg.advise = true,
            "--slow-ms" => {
                cfg.slow_ms = Some(value(&mut args).parse().unwrap_or_else(|_| usage()));
                cfg.profile = true;
            }
            _ => usage(),
        }
    }
    cfg
}

fn main() {
    if let Err(e) = run(parse_args()) {
        eprintln!("ruleserv: {e}");
        std::process::exit(1);
    }
}

fn run(cfg: Config) -> Result<(), Box<dyn std::error::Error>> {
    let registry = Arc::new(Registry::new());
    let mut engine = DurableRuleEngine::open_with_metrics(
        &cfg.dir,
        FunctionRegistry::default(),
        ActionRegistry::new(),
        Options {
            sync: match cfg.sync_every {
                None => SyncPolicy::Always,
                Some(n) => SyncPolicy::EveryN(n),
            },
            snapshot_every: cfg.snapshot_every,
        },
        Arc::clone(&registry),
    )?;
    if cfg.profile {
        engine.attach_profiler(Profiler::new(&registry));
    }
    let advisor = if cfg.advise {
        let workload = WorkloadStats::new(&registry);
        engine.attach_workload(workload.clone());
        let advisor = Advisor::new(workload);
        let flight_advisor = advisor.clone();
        engine.attach_advisor(move || flight_advisor.render_text());
        Some(advisor)
    } else {
        None
    };
    // A clone of the (possibly disabled) profiler for the exposition
    // server; the engine itself moves into the serve thread.
    let profiler = engine.profiler().clone();

    let opts = ServerOptions {
        queue_cap: cfg.queue_cap,
        pipeline_cap: cfg.pipeline_cap,
        crash_after: cfg.crash_after,
        slow_op_threshold: cfg.slow_ms.map(std::time::Duration::from_millis),
        ..ServerOptions::default()
    };
    let server = serve(&cfg.bind, engine, opts)?;
    // Parsed by supervisors and tests; keep the shape stable.
    println!("LISTENING {}", server.addr());

    let exposition = match &cfg.metrics {
        Some(addr) => {
            // The engine has moved into its thread; /health is served
            // from the registry-backed families instead.
            let health_registry = Arc::clone(&registry);
            let hook = advisor.map(|advisor| {
                let json = advisor.clone();
                AdvisorHook::new(
                    move || json.report_json(),
                    move || advisor.metrics_comment_lines(),
                )
            });
            let handle = telemetry::serve_with_advisor(
                addr,
                Arc::clone(&registry),
                Tracer::disabled(),
                Some(Box::new(move || -> String {
                    format!(
                        "up 1\nserver_requests {}\nserver_connections {}\n",
                        health_registry.counter_family_total("server_requests_total"),
                        health_registry.counter_family_total("server_connections_total"),
                    )
                })),
                profiler,
                hook,
            )?;
            println!("METRICS {}", handle.addr());
            Some(handle)
        }
        None => None,
    };

    match cfg.seconds {
        Some(s) => std::thread::sleep(std::time::Duration::from_secs(s)),
        None => {
            // Run until the supervisor closes stdin.
            let mut sink = [0u8; 4096];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    eprintln!("ruleserv: shutting down");
    if let Some(h) = exposition {
        h.shutdown();
    }
    if let Some(mut engine) = server.shutdown() {
        engine.sync()?;
    }
    Ok(())
}
