//! # predmatch
//!
//! A full reproduction of **Hanson, Chaabouni, Kam & Wang, "A Predicate
//! Matching Algorithm for Database Rule Systems" (SIGMOD 1990)**.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`ibs`] — the paper's primary contribution, the **interval binary
//!   search tree** (IBS-tree): dynamic stabbing queries over intervals and
//!   points, with AVL balancing via mark-preserving rotations.
//! * [`interval`] — the interval/bound algebra every structure shares.
//! * [`altindex`] — comparator interval indexes: naive list, segment tree,
//!   centered interval tree, augmented interval treap, interval skip list.
//! * [`rtree`] — a Guttman R-tree (the §2.4 multi-dimensional baseline and
//!   the 1-D dynamic comparator from §4.1).
//! * [`relation`] — main-memory relational substrate: values, schemas,
//!   tuples, relations, catalog, and optimizer statistics.
//! * [`predicate`] — the paper's predicate model (conjunctions of range /
//!   equality / opaque-function clauses), a textual parser, evaluation and
//!   selectivity estimation.
//! * [`predindex`] — the Figure 1 predicate-indexing scheme plus the §2
//!   baseline matchers, all behind one [`predindex::Matcher`] trait, and
//!   [`predindex::ShardedPredicateIndex`], the concurrent batch-capable
//!   front-end (state partitioned by relation name behind per-shard
//!   reader–writer locks).
//! * [`rules`] — a forward-chaining rule engine (triggers) built on top.
//! * [`durable`] — opt-in durability for the rule engine: a checksummed
//!   write-ahead log, atomic snapshots, and crash recovery that replays
//!   the engine operation-for-operation ([`durable::DurableRuleEngine`]).
//!
//! ## Quickstart
//!
//! ```
//! use predmatch::prelude::*;
//!
//! // A relation and some rules' selection predicates over it.
//! let mut db = Database::new();
//! db.create_relation(
//!     Schema::builder("emp")
//!         .attr("name", AttrType::Str)
//!         .attr("age", AttrType::Int)
//!         .attr("salary", AttrType::Int)
//!         .build(),
//! )
//! .unwrap();
//!
//! let mut index = PredicateIndex::new();
//! let p1 = parse_predicate("emp.salary < 20000 and emp.age > 50").unwrap();
//! let p2 = parse_predicate("20000 <= emp.salary <= 30000").unwrap();
//! let id1 = index.insert(p1, db.catalog()).unwrap();
//! let _id2 = index.insert(p2, db.catalog()).unwrap();
//!
//! // Which predicates match a newly inserted tuple?
//! let tuple = db
//!     .insert("emp", vec![Value::str("al"), Value::Int(61), Value::Int(12000)])
//!     .unwrap();
//! let matches = index.match_tuple("emp", &tuple);
//! assert_eq!(matches, vec![id1]);
//! ```

#![deny(unreachable_pub)]

pub use altindex;
pub use durable;
pub use ibs;
pub use interval;
pub use joinmemo;
pub use predicate;
pub use predindex;
pub use relation;
pub use rtree;
pub use rules;
pub use telemetry;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use crate::ibs::{BalanceMode, IbsTree};
    pub use crate::interval::{Interval, IntervalId, Lower, Upper};
    pub use crate::predicate::{parse_predicate, Clause, Predicate};
    pub use crate::predindex::{Matcher, PredicateIndex, ShardedPredicateIndex};
    pub use crate::relation::{AttrType, Catalog, Database, Schema, Tuple, Value};
    pub use crate::rules::{Action, Rule, RuleEngine};
    pub use crate::telemetry::{MatchTrace, Registry};
}
