//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a registry, so this workspace
//! vendors the subset of criterion's API its benches use: `Criterion`
//! with the `sample_size` / `warm_up_time` / `measurement_time`
//! builders, `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: after a warm-up period, each benchmark runs
//! batches of iterations until the measurement time elapses (minimum
//! `sample_size` batches) and reports mean and minimum per-iteration
//! wall-clock time, plus throughput when configured. Output is plain
//! text on stdout — no plots, no statistical machinery — which is all
//! the repo's bench harness needs to rank alternatives.

use std::fmt;
use std::time::{Duration, Instant};

/// Element/byte count for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A `function-name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter display form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id (upstream parity).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing loop driver passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled in by `iter`: (total elapsed, iterations) per sample.
    samples: Vec<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly; see the module docs for the model.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up clock expires, measuring a
        // rough per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Aim for `sample_size` samples inside the measurement window.
        let budget = self.config.measurement_time.as_secs_f64();
        let per_sample = budget / self.config.sample_size.max(1) as f64;
        let batch = (per_sample / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        let measure_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push((t0.elapsed(), batch));
            if self.samples.len() >= self.config.sample_size
                || measure_start.elapsed() >= self.config.measurement_time
            {
                // Guarantee at least a handful of samples even when a
                // single batch overruns the window.
                if self.samples.len() >= 3.min(self.config.sample_size) {
                    break;
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The harness entry point (subset of upstream's builder).
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Upstream parses CLI args here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>),
    {
        let id = id.into();
        let config = self.config.clone();
        run_one(&config, None, &id.name, None, f);
        self
    }

    /// Upstream finalizes reports here; the shim has nothing to flush.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for elements/s reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.config.sample_size = n;
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.config.measurement_time = d;
        self
    }

    /// Benchmarks a closure that captures its input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>),
    {
        let id = id.into();
        run_one(
            &self.criterion.config,
            Some(&self.name),
            &id.name,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks a closure over an explicit input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        run_one(
            &self.criterion.config,
            Some(&self.name),
            &id.name,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream emits summary reports here).
    pub fn finish(self) {}
}

fn run_one<F>(config: &Config, group: Option<&str>, id: &str, throughput: Option<Throughput>, f: F)
where
    F: FnOnce(&mut Bencher<'_>),
{
    let mut bencher = Bencher {
        config,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if bencher.samples.is_empty() {
        println!("{label:<56} (no samples: Bencher::iter never called)");
        return;
    }
    let per_iter_ns = |(d, n): &(Duration, u64)| d.as_secs_f64() * 1e9 / *n as f64;
    let mean = bencher.samples.iter().map(per_iter_ns).sum::<f64>() / bencher.samples.len() as f64;
    let min = bencher
        .samples
        .iter()
        .map(per_iter_ns)
        .fold(f64::INFINITY, f64::min);
    let thr = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / mean)
        }
        None => String::new(),
    };
    println!(
        "{label:<56} mean {:>12} min {:>12}{thr}",
        fmt_ns(mean),
        fmt_ns(min)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Re-export so `criterion::black_box` call sites work; prefer
/// `std::hint::black_box` in new code.
pub use std::hint::black_box;

/// Declares a group runner, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_run_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("insert", 100);
        assert_eq!(id.name, "insert/100");
        let id = BenchmarkId::from_parameter(7);
        assert_eq!(id.name, "7");
    }
}
