//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach a registry, so this workspace
//! vendors the subset of `rand` 0.8 it actually uses: [`SeedableRng`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256** seeded via SplitMix64 — statistically solid for test and
//! benchmark workloads, deterministic per seed, but **not** the same
//! stream as upstream `StdRng` (which is ChaCha12). Nothing in this
//! repository depends on the exact stream, only on determinism.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything above is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material (the subset used: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly from a range of.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )+};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

macro_rules! impl_sample_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let x = lo + (hi - lo) * unit;
                // Rounding can land exactly on `hi`; clamp back inside.
                if x < hi { x } else { lo }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )+};
}

impl_sample_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types `Rng::gen` can produce directly.
pub trait Standard: Sized {
    /// Draws one value from the type's full/natural distribution.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A value from the type's natural distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** (Blackman & Vigna), seeded through SplitMix64 as its
    /// authors recommend. Same name as upstream's default so call sites
    /// compile unchanged; the stream differs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: callers asking for the "small" generator get the same one.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence helpers (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Slice extensions: Fisher–Yates shuffle and uniform choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place permutation.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&y));
            let f = rng.gen_range(0.25f64..1.75);
            assert!((0.25..1.75).contains(&f));
            let g = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
