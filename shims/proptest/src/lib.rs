//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a registry, so this workspace
//! vendors the subset of proptest's API that its test suites use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_filter_map`, `prop_recursive`, and `boxed`;
//! * strategies for integer/float ranges, `&str` character-class
//!   patterns (`"[a-z]{0,6}"`), [`Just`], tuples, and
//!   [`collection::vec`];
//! * [`arbitrary::Arbitrary`] with [`prelude::any`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`], and [`prop_assume!`]
//!   macros.
//!
//! Semantics match upstream where the tests can observe them —
//! generation is random and configurable via `ProptestConfig::cases`,
//! assumptions reject-and-resample, failures report the message —
//! except there is **no shrinking**: a failing case is reported as
//! generated. Runs are deterministic per test-function name.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// The generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n)
    }

    /// Uniform `usize` from a half-open range.
    pub fn usize_in(&mut self, r: Range<usize>) -> usize {
        self.0.gen_range(r)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Hard failure: the property is violated.
    Fail(String),
    /// Soft rejection (`prop_assume!`): resample and retry.
    Reject(String),
}

impl TestCaseError {
    /// A hard failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A soft rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Convenient alias matching upstream.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Upper bound on rejected samples across the whole run.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Default config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A source of random values. `generate` returns `None` when the drawn
/// sample was filtered out; the runner resamples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on a local rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values where `f` returns true.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        let _ = reason;
        Filter { inner: self, f }
    }

    /// Map-and-filter in one pass: `None` from `f` rejects the sample.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        let _ = reason;
        FilterMap { inner: self, f }
    }

    /// Builds recursive values: `recurse` receives a strategy for
    /// sub-values and returns the composite level. `depth` bounds
    /// nesting; the leaf strategy is mixed in at every level so
    /// generation always terminates.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let level = recurse(strat).boxed();
            strat = Union::new(vec![(1, leaf.clone()), (2, level)]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A cheaply clonable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Weighted choice between boxed alternatives (what [`prop_oneof!`]
/// builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// A union of `(weight, strategy)` arms. Weights must sum > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|&(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let mut roll = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if roll < *w {
                return s.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weights cover the roll")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.0.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.0.gen_range(self.clone()))
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `&str` as a strategy: a character-class pattern of the exact form
/// `[lo-hi]{min,max}` (e.g. `"[a-z]{0,6}"`), the only regex subset this
/// workspace uses. Anything else panics loudly.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        let (class, min, max) = parse_char_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = rng.usize_in(min..max + 1);
        Some(
            (0..len)
                .map(|_| class[rng.usize_in(0..class.len())])
                .collect(),
        )
    }
}

/// Parses `[a-z]{0,6}`-style patterns into (alphabet, min, max).
fn parse_char_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class_src, rest) = rest.split_once(']')?;
    let chars: Vec<char> = class_src.chars().collect();
    let class: Vec<char> = match chars.as_slice() {
        [lo, '-', hi] => (*lo..=*hi).collect(),
        _ if !chars.is_empty() && !chars.contains(&'-') => chars,
        _ => return None,
    };
    if class.is_empty() {
        return None;
    }
    let rest = rest.strip_prefix('{')?;
    let (counts, tail) = rest.split_once('}')?;
    if !tail.is_empty() {
        return None;
    }
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((class, min, max))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $v:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng)?;)+
                Some(($($v,)+))
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A a)
    (A a, B b)
    (A a, B b, C c)
    (A a, B b, C c, D d)
    (A a, B b, C c, D d, E e)
    (A a, B b, C c, D d, E e, F f)
    (A a, B b, C c, D d, E e, F f, G g)
    (A a, B b, C c, D d, E e, F f, G g, H h)
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait: types with a canonical strategy.

    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a natural full-domain strategy ([`super::prelude::any`]).
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($t:ident),+))+) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        )+};
    }

    impl_arbitrary_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// The strategy returned by [`super::prelude::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies (subset: [`vec`]).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Ranges and exact counts accepted as a [`vec`] size.
    pub trait SizeRange {
        /// `(min, max_exclusive)` element count.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// A `Vec` of `size`-many values drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = rng.usize_in(self.min..self.max);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                // Tolerate locally rejecting element strategies; give the
                // element a bounded number of redraws before rejecting
                // the whole vector.
                let mut elem = None;
                for _ in 0..16 {
                    if let Some(v) = self.elem.generate(rng) {
                        elem = Some(v);
                        break;
                    }
                }
                out.push(elem?);
            }
            Some(out)
        }
    }
}

pub mod option {
    //! Option strategies (subset: [`of`]).

    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
            if rng.below(4) == 0 {
                Some(None)
            } else {
                self.inner.generate(rng).map(Some)
            }
        }
    }
}

pub mod test_runner {
    //! The case loop behind [`crate::proptest!`].

    use super::{ProptestConfig, Strategy, TestCaseError, TestRng};

    /// Runs `body` against `config.cases` generated values, resampling
    /// on rejection, panicking on the first failure (no shrinking).
    pub fn run<S, F>(config: &ProptestConfig, test_name: &str, strat: &S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        // Deterministic per test name so failures reproduce.
        let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut rng = TestRng::from_seed(seed);
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < config.cases {
            let Some(value) = strat.generate(&mut rng) else {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "{test_name}: too many strategy-level rejections ({rejects})"
                );
                continue;
            };
            match body(value) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "{test_name}: too many prop_assume rejections ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: property failed at case {case}: {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    //! Re-exports under upstream's module path.
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the tests name.

    pub use super::arbitrary::{Any, Arbitrary};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use super::{BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult};
    /// Upstream exposes the crate under `prop::` inside the prelude.
    pub use crate as prop;
    use std::marker::PhantomData;

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` at {}:{}: {}\n  both: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), l
            )));
        }
    }};
}

/// Rejects the current case (resampled, not counted) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strat = ($($strat,)+);
            $crate::test_runner::run(
                &config,
                stringify!($name),
                &strat,
                |($($pat,)+)| {
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn char_class_parsing() {
        let (class, min, max) = super::parse_char_class_pattern("[a-z]{0,6}").unwrap();
        assert_eq!(class.len(), 26);
        assert_eq!((min, max), (0, 6));
        let (class, min, max) = super::parse_char_class_pattern("[0-9]{3}").unwrap();
        assert_eq!(class.len(), 10);
        assert_eq!((min, max), (3, 3));
        assert!(super::parse_char_class_pattern("[a-z]+").is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(x in -50i64..50, y in 0usize..10) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(y < 10);
        }

        #[test]
        fn filters_are_respected(
            v in (0i32..100).prop_filter("even", |n| n % 2 == 0),
            s in "[a-c]{1,4}",
        ) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_vec_compose(
            values in prop::collection::vec(prop_oneof![
                2 => (0i64..10).prop_map(|v| v),
                1 => Just(-1i64),
            ], 1..20),
        ) {
            prop_assert!(!values.is_empty());
            prop_assert!(values.iter().all(|&v| v == -1 || (0..10).contains(&v)));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    impl Tree {
        fn depth(&self) -> u32 {
            match self {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + a.depth().max(b.depth()),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_terminate(
            t in (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 12, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            }),
        ) {
            prop_assert!(t.depth() <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        let config = ProptestConfig::with_cases(8);
        crate::test_runner::run(&config, "failures_panic", &(0i64..10), |_x| {
            crate::prop_assert!(false);
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
